package kernel

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Addr is a TCP endpoint address.
type Addr struct {
	Host string
	Port int
}

func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// ErrTimeout is returned by RecvTimeout when the deadline expires.
var ErrTimeout = errors.New("kernel: timed out")

// ListenSock is a listening socket (TCP port or UNIX path).
type ListenSock struct {
	kern    *Kernel
	kind    FileKind
	addr    Addr   // TCP
	path    string // UNIX
	backlog []*TCPEndpoint
	wq      *sim.WaitQueue
	closed  bool
}

// Addr returns the listener's address (TCP listeners).
func (ls *ListenSock) Addr() Addr { return ls.addr }

// Path returns the listener's path (UNIX listeners).
func (ls *ListenSock) Path() string { return ls.path }

func (ls *ListenSock) close() {
	if ls.closed {
		return
	}
	ls.closed = true
	switch ls.kind {
	case FKTCPListen:
		delete(ls.kern.tcpPorts, ls.addr.Port)
	case FKUnixListen:
		delete(ls.kern.unixPaths, ls.path)
	}
	for _, ep := range ls.backlog {
		ep.shutdown()
	}
	ls.backlog = nil
	ls.wq.WakeAll()
}

// TCPEndpoint is one side of an established stream connection (TCP or
// UNIX-domain; both use the same machinery, differing in latency).
// recvBuf models the kernel receive buffer that DMTCP's drain stage
// empties into user space.
type TCPEndpoint struct {
	node *Node
	kind FileKind // FKTCP or FKUnix

	peer *TCPEndpoint

	// Local and Remote are the connection's addresses as seen from
	// this side.
	Local, Remote Addr

	// ConnID identifies the kernel connection object (both ends
	// share it); it is not the DMTCP global socket ID.
	ConnID int64

	recvBuf     []byte
	inflight    int64    // bytes scheduled for delivery into recvBuf
	lastArrival sim.Time // serialization point for FIFO delivery

	// parked holds frames a network partition is withholding from this
	// endpoint, in arrival order; HealFault re-injects them.  Parked
	// bytes count in inflight so senders see window backpressure.
	parked []parkedFrame

	closedLocal bool // this side shut down
	peerClosed  bool // FIN from peer delivered

	// tag carries wrapper metadata attached at connection setup (the
	// DMTCP connector→acceptor information transfer of §4.4, carried
	// with the connection rather than in-band so that peers without
	// wrappers are undisturbed).
	tag string

	readq  *sim.WaitQueue // readers waiting for data
	writeq *sim.WaitQueue // peer's writers waiting for space here
}

// Kind returns FKTCP or FKUnix.
func (ep *TCPEndpoint) Kind() FileKind { return ep.kind }

// Tag returns the wrapper metadata attached at connection setup.
func (ep *TCPEndpoint) Tag() string { return ep.tag }

// SetTag attaches wrapper metadata to this endpoint and its peer.
func (ep *TCPEndpoint) SetTag(tag string) {
	ep.tag = tag
	if ep.peer != nil {
		ep.peer.tag = tag
	}
}

// Peer returns the remote endpoint (nil after full teardown).
func (ep *TCPEndpoint) Peer() *TCPEndpoint { return ep.peer }

// Buffered returns the bytes available in the receive buffer
// (ioctl FIONREAD).
func (ep *TCPEndpoint) Buffered() int { return len(ep.recvBuf) }

// InFlight returns bytes scheduled for delivery (on the wire).
func (ep *TCPEndpoint) InFlight() int64 { return ep.inflight }

// PeerClosed reports whether the peer has shut down.
func (ep *TCPEndpoint) PeerClosed() bool { return ep.peerClosed }

func (c *Cluster) newEndpointPair(a, b *Node, kind FileKind, la, lb Addr) (*TCPEndpoint, *TCPEndpoint) {
	c.nextConnID++
	id := c.nextConnID
	e := c.Eng
	mk := func(n *Node, local, remote Addr, tag string) *TCPEndpoint {
		return &TCPEndpoint{
			node:   n,
			kind:   kind,
			Local:  local,
			Remote: remote,
			ConnID: id,
			readq:  sim.NewWaitQueue(e, fmt.Sprintf("conn%d.%s.rd", id, tag)),
			writeq: sim.NewWaitQueue(e, fmt.Sprintf("conn%d.%s.wr", id, tag)),
		}
	}
	epA := mk(a, la, lb, "a")
	epB := mk(b, lb, la, "b")
	epA.peer, epB.peer = epB, epA
	return epA, epB
}

// latency/bandwidth from the *sender's* node toward ep.
func (ep *TCPEndpoint) linkFrom(src *Node) (lat float64, bw float64) {
	return src.netDelayTo(ep.node)
}

// enqueue schedules delivery of data into ep's receive buffer,
// preserving FIFO order and modeling link serialization.
func (ep *TCPEndpoint) enqueue(src *Node, data []byte) {
	c := ep.node.Cluster
	e := c.Eng
	if len(ep.parked) > 0 || c.linkPartitioned(src, ep.node) {
		// The link is partitioned (or earlier frames still are parked,
		// which FIFO must not let this frame overtake): hold the frame
		// until the fault heals.
		c.parkFrame(ep, src, data, false)
		return
	}
	lat, bw := ep.linkFrom(src)
	xfer := float64(len(data)) / bw * 1e9 // ns
	if extra := c.faultExtraDelay(src, ep.node); extra > 0 {
		lat += float64(extra.Nanoseconds())
	}
	arrive := e.Now() + sim.Time(lat)
	if ep.lastArrival > arrive {
		arrive = ep.lastArrival
	}
	arrive += sim.Time(xfer)
	ep.lastArrival = arrive
	ep.inflight += int64(len(data))
	buf := append([]byte(nil), data...)
	e.Schedule(arrive.Sub(e.Now()), func() {
		ep.inflight -= int64(len(buf))
		if ep.closedLocal {
			return // receiver gone; bytes dropped
		}
		ep.recvBuf = append(ep.recvBuf, buf...)
		ep.readq.WakeAll()
	})
}

// sendFIN schedules the peer-closed notification, ordered after all
// data already in flight.
func (ep *TCPEndpoint) sendFIN(src *Node) {
	c := ep.node.Cluster
	e := c.Eng
	if len(ep.parked) > 0 || c.linkPartitioned(src, ep.node) {
		// The FIN is ordered after parked data: park it too.
		c.parkFrame(ep, src, nil, true)
		return
	}
	lat, _ := ep.linkFrom(src)
	arrive := e.Now() + sim.Time(lat)
	if ep.lastArrival > arrive {
		arrive = ep.lastArrival
	}
	ep.lastArrival = arrive
	e.Schedule(arrive.Sub(e.Now()), func() {
		ep.peerClosed = true
		ep.readq.WakeAll()
		ep.writeq.WakeAll()
	})
}

// shutdown closes this side: readers see EOF once drained; the peer
// is notified in order.
func (ep *TCPEndpoint) shutdown() {
	if ep.closedLocal {
		return
	}
	ep.closedLocal = true
	ep.readq.WakeAll()
	ep.writeq.WakeAll()
	if ep.peer != nil && !ep.peer.closedLocal {
		ep.peer.sendFIN(ep.node)
	}
}

// --- Task-level socket API ------------------------------------------

// Socket creates an unconnected TCP stream socket.
func (t *Task) Socket() int {
	t.chargeSyscall()
	of := &OpenFile{Kind: FKTCP}
	fd := t.P.addFD(of, 3)
	if h := t.P.hooks; h != nil {
		h.PostSocket(t, fd, of)
	}
	return fd
}

// UnixSocket creates an unconnected UNIX-domain stream socket.
func (t *Task) UnixSocket() int {
	t.chargeSyscall()
	of := &OpenFile{Kind: FKUnix}
	fd := t.P.addFD(of, 3)
	if h := t.P.hooks; h != nil {
		h.PostSocket(t, fd, of)
	}
	return fd
}

// Bind assigns a local TCP port (0 picks an ephemeral port).
func (t *Task) Bind(fd, port int) error {
	t.chargeSyscall()
	of, err := t.P.FD(fd)
	if err != nil {
		return err
	}
	if of.Kind != FKTCP {
		return ErrNotSocket
	}
	k := t.P.Kern
	if port == 0 {
		port = k.ephemeralPort()
	} else if _, used := k.tcpPorts[port]; used {
		return ErrAddrInUse
	}
	of.Listen = &ListenSock{
		kern: k,
		kind: FKTCPListen,
		addr: Addr{Host: t.P.Node.Hostname, Port: port},
		wq:   sim.NewWaitQueue(k.node.Cluster.Eng, fmt.Sprintf("listen:%d", port)),
	}
	if h := t.P.hooks; h != nil {
		h.PostBind(t, fd, of)
	}
	return nil
}

// Listen turns a bound socket into a listener.
func (t *Task) Listen(fd int) error {
	t.chargeSyscall()
	of, err := t.P.FD(fd)
	if err != nil {
		return err
	}
	if of.Listen == nil {
		return ErrNotSocket
	}
	k := t.P.Kern
	switch of.Kind {
	case FKTCP:
		if _, used := k.tcpPorts[of.Listen.addr.Port]; used {
			return ErrAddrInUse
		}
		of.Kind = FKTCPListen
		k.tcpPorts[of.Listen.addr.Port] = of.Listen
	case FKUnix:
		if _, used := k.unixPaths[of.Listen.path]; used {
			return ErrAddrInUse
		}
		of.Kind = FKUnixListen
		k.unixPaths[of.Listen.path] = of.Listen
	default:
		return ErrNotSocket
	}
	if h := t.P.hooks; h != nil {
		h.PostListen(t, fd, of)
	}
	return nil
}

// ListenTCP is the bind+listen convenience used by servers.
func (t *Task) ListenTCP(port int) (int, error) {
	fd := t.Socket()
	if err := t.Bind(fd, port); err != nil {
		t.Close(fd)
		return -1, err
	}
	if err := t.Listen(fd); err != nil {
		t.Close(fd)
		return -1, err
	}
	return fd, nil
}

// BindUnix assigns a UNIX-domain path to the socket.
func (t *Task) BindUnix(fd int, path string) error {
	t.chargeSyscall()
	of, err := t.P.FD(fd)
	if err != nil {
		return err
	}
	if of.Kind != FKUnix {
		return ErrNotSocket
	}
	k := t.P.Kern
	if _, used := k.unixPaths[path]; used {
		return ErrAddrInUse
	}
	of.Listen = &ListenSock{
		kern: k,
		kind: FKUnixListen,
		path: path,
		wq:   sim.NewWaitQueue(k.node.Cluster.Eng, "listen:"+path),
	}
	if h := t.P.hooks; h != nil {
		h.PostBind(t, fd, of)
	}
	return nil
}

// Connect establishes a TCP connection to addr, blocking for the
// handshake round trip.
func (t *Task) Connect(fd int, addr Addr) error {
	t.chargeSyscall()
	p := t.P
	of, err := p.FD(fd)
	if err != nil {
		return err
	}
	if of.Kind != FKTCP || of.TCP != nil {
		return ErrNotSocket
	}
	if h := p.hooks; h != nil {
		h.PreConnect(t, fd, of, addr)
	}
	c := p.Node.Cluster
	dst := c.LookupHost(addr.Host)
	lat, _ := p.Node.netDelayTo(dst)
	// SYN travels to the server.
	t.T.Sleep(sim.Time(lat).Duration())
	if dst == nil || dst.Down {
		return ErrConnRefused
	}
	if c.faultBlocksConnect(p.Node, dst) {
		// The handshake dies in the partition (SYN or SYN-ACK lost) or
		// in a refuse window: the caller sees a refused connection
		// after another round trip, same as a closed port.
		t.T.Sleep(sim.Time(lat).Duration())
		return ErrConnRefused
	}
	ls, ok := dst.Kern.tcpPorts[addr.Port]
	if !ok || ls.closed {
		t.T.Sleep(sim.Time(lat).Duration()) // RST comes back
		return ErrConnRefused
	}
	local := Addr{Host: p.Node.Hostname, Port: p.Kern.ephemeralPort()}
	epC, epS := c.newEndpointPair(p.Node, dst, FKTCP, local, addr)
	epC.tag, epS.tag = of.PendingTag, of.PendingTag
	ls.backlog = append(ls.backlog, epS)
	ls.wq.WakeAll()
	// SYN-ACK comes back.
	t.T.Sleep(sim.Time(lat).Duration())
	of.TCP = epC
	if h := p.hooks; h != nil {
		h.PostConnect(t, fd, of)
	}
	return nil
}

// ConnectUnix establishes a UNIX-domain connection to path on the
// local node.
func (t *Task) ConnectUnix(fd int, path string) error {
	t.chargeSyscall()
	p := t.P
	of, err := p.FD(fd)
	if err != nil {
		return err
	}
	if of.Kind != FKUnix || of.TCP != nil {
		return ErrNotSocket
	}
	ls, ok := p.Kern.unixPaths[path]
	if !ok || ls.closed {
		return ErrConnRefused
	}
	epC, epS := p.Node.Cluster.newEndpointPair(p.Node, p.Node, FKUnix,
		Addr{Host: p.Node.Hostname}, Addr{Host: p.Node.Hostname})
	epC.tag, epS.tag = of.PendingTag, of.PendingTag
	epC.Local.Host = path // diagnostic
	ls.backlog = append(ls.backlog, epS)
	ls.wq.WakeAll()
	t.T.Sleep(p.params().LoopbackLatency)
	of.TCP = epC
	if h := p.hooks; h != nil {
		h.PostConnect(t, fd, of)
	}
	return nil
}

// Accept blocks until a connection arrives on the listener and
// returns a new descriptor for it.
func (t *Task) Accept(fd int) (int, error) {
	t.chargeSyscall()
	p := t.P
	of, err := p.FD(fd)
	if err != nil {
		return -1, err
	}
	if !of.Kind.IsListener() || of.Listen == nil {
		return -1, ErrNotSocket
	}
	ls := of.Listen
	for len(ls.backlog) == 0 {
		if ls.closed {
			return -1, ErrClosed
		}
		if ls.wq.Wait(t.T) == sim.WakeInterrupt {
			t.T.ClearInterrupt()
			return -1, sim.ErrInterrupted
		}
	}
	ep := ls.backlog[0]
	ls.backlog = ls.backlog[1:]
	kind := FKTCP
	if of.Kind == FKUnixListen {
		kind = FKUnix
	}
	nof := &OpenFile{Kind: kind, TCP: ep}
	nfd := p.addFD(nof, 3)
	if h := p.hooks; h != nil {
		h.PostAccept(t, nfd, nof)
	}
	return nfd, nil
}

// SocketPair creates a connected pair of UNIX-domain sockets.
func (t *Task) SocketPair() (int, int) {
	t.chargeSyscall()
	p := t.P
	epA, epB := p.Node.Cluster.newEndpointPair(p.Node, p.Node, FKUnix,
		Addr{Host: p.Node.Hostname}, Addr{Host: p.Node.Hostname})
	ofA := &OpenFile{Kind: FKUnix, TCP: epA}
	ofB := &OpenFile{Kind: FKUnix, TCP: epB}
	a := p.addFD(ofA, 3)
	b := p.addFD(ofB, 3)
	if h := p.hooks; h != nil {
		h.PostSocketpair(t, a, b, ofA, ofB)
	}
	return a, b
}

// streamFor resolves fd to a connected endpoint.
func (t *Task) streamFor(fd int) (*TCPEndpoint, error) {
	of, err := t.P.FD(fd)
	if err != nil {
		return nil, err
	}
	switch of.Kind {
	case FKTCP, FKUnix, FKPtyMaster, FKPtySlave:
		if of.Kind == FKPtyMaster || of.Kind == FKPtySlave {
			return of.Pty.ep, nil
		}
		if of.TCP == nil {
			return nil, ErrNotConn
		}
		return of.TCP, nil
	default:
		return nil, ErrNotSocket
	}
}

// Send writes all of data to the stream, blocking as the receive
// window fills.  The in-progress remainder is captured as a send
// continuation — registered before the first scheduling point, so a
// checkpoint can complete the stream exactly even if it lands before
// any byte has moved.
func (t *Task) Send(fd int, data []byte) (int, error) {
	t.sendCont = &SendCont{FD: fd, Remaining: data}
	defer func() { t.sendCont = nil }()
	t.chargeSyscall()
	ep, err := t.streamFor(fd)
	if err != nil {
		return 0, err
	}
	bufCap := int(t.P.params().SocketBufBytes)
	sent := 0
	for sent < len(data) {
		peer := ep.peer
		if ep.closedLocal || peer == nil || peer.closedLocal {
			return sent, ErrClosed
		}
		space := bufCap - (len(peer.recvBuf) + int(peer.inflight))
		if space <= 0 {
			peer.writeq.Wait(t.T)
			continue
		}
		chunk := len(data) - sent
		if chunk > space {
			chunk = space
		}
		peer.enqueue(t.P.Node, data[sent:sent+chunk])
		sent += chunk
		t.sendCont.Remaining = data[sent:]
	}
	return sent, nil
}

// TrySend queues as much of data as the peer's receive window allows
// without blocking and returns the byte count (possibly zero).  The
// drain stage uses it to interleave token sends across many sockets
// without deadlocking on full buffers (real DMTCP drains with
// non-blocking I/O under a poll loop).
func (t *Task) TrySend(fd int, data []byte) (int, error) {
	t.chargeSyscall()
	ep, err := t.streamFor(fd)
	if err != nil {
		return 0, err
	}
	peer := ep.peer
	if ep.closedLocal || peer == nil || peer.closedLocal {
		return 0, ErrClosed
	}
	space := int(t.P.params().SocketBufBytes) - (len(peer.recvBuf) + int(peer.inflight))
	if space <= 0 {
		return 0, nil
	}
	chunk := len(data)
	if chunk > space {
		chunk = space
	}
	peer.enqueue(t.P.Node, data[:chunk])
	return chunk, nil
}

// Recv reads up to max buffered bytes, blocking until data arrives or
// the peer closes (io.EOF).
func (t *Task) Recv(fd int, max int) ([]byte, error) {
	return t.recv(fd, max, -1)
}

// RecvTimeout is Recv with a deadline; it returns ErrTimeout if no
// data arrives in time.  The drain stage uses it as its settle poll.
func (t *Task) RecvTimeout(fd int, max int, d sim.Time) ([]byte, error) {
	return t.recv(fd, max, d)
}

func (t *Task) recv(fd int, max int, timeout sim.Time) ([]byte, error) {
	t.chargeSyscall()
	ep, err := t.streamFor(fd)
	if err != nil {
		return nil, err
	}
	for {
		if len(ep.recvBuf) > 0 {
			n := max
			if n < 0 || n > len(ep.recvBuf) {
				n = len(ep.recvBuf)
			}
			out := append([]byte(nil), ep.recvBuf[:n]...)
			ep.recvBuf = ep.recvBuf[n:]
			// Space freed: wake senders blocked on our window.
			ep.writeq.WakeAll()
			return out, nil
		}
		if ep.peerClosed && ep.inflight == 0 {
			return nil, io.EOF
		}
		if ep.closedLocal {
			return nil, ErrClosed
		}
		var reason sim.WakeReason
		if timeout >= 0 {
			reason = ep.readq.WaitTimeout(t.T, timeout.Duration())
		} else {
			reason = ep.readq.Wait(t.T)
		}
		switch reason {
		case sim.WakeTimeout:
			return nil, ErrTimeout
		case sim.WakeInterrupt:
			t.T.ClearInterrupt()
			return nil, sim.ErrInterrupted
		}
	}
}

// RecvN blocks until exactly n bytes have been read (or an error).
func (t *Task) RecvN(fd, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for len(out) < n {
		chunk, err := t.Recv(fd, n-len(out))
		if err != nil {
			return out, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// Avail returns the bytes immediately readable on fd (FIONREAD).
func (t *Task) Avail(fd int) (int, error) {
	ep, err := t.streamFor(fd)
	if err != nil {
		return 0, err
	}
	return len(ep.recvBuf), nil
}

// Unread pushes data back to the front of the endpoint's receive
// buffer.  The DMTCP refill stage uses it to return drained bytes to
// the kernel: the paper's protocol sends the data back to the sender,
// who re-sends it (§4.3 step 6); the state outcome is identical and
// the two network crossings are charged by the caller.
func (ep *TCPEndpoint) Unread(data []byte) {
	if len(data) == 0 {
		return
	}
	ep.recvBuf = append(append([]byte(nil), data...), ep.recvBuf...)
	ep.readq.WakeAll()
}

// RefillCost returns the modeled time for the paper's drain-data
// round trip: receiver sends the drained bytes back, sender re-sends
// them.
func (ep *TCPEndpoint) RefillCost(n int64) sim.Time {
	lat, bw := ep.linkFrom(ep.node)
	if ep.peer != nil {
		lat, bw = ep.linkFrom(ep.peer.node)
	}
	per := sim.Time(lat) + sim.Time(float64(n)/bw*1e9)
	return 2 * per
}
