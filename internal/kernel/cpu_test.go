package kernel

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// spawnComputers starts n sibling tasks each charging work of CPU time
// and returns a wait that blocks until all have finished, plus the
// slice of per-task completion times.
func spawnComputers(task *Task, n int, work time.Duration) func() []sim.Time {
	done := make([]sim.Time, n)
	finished := 0
	join := sim.NewWaitQueue(task.P.Node.Cluster.Eng, "cpu-test-join")
	for i := 0; i < n; i++ {
		i := i
		task.P.SpawnTask("burn", false, func(bt *Task) {
			bt.Compute(work)
			done[i] = bt.Now()
			finished++
			join.WakeAll()
		})
	}
	return func() []sim.Time {
		for finished < n {
			join.Wait(task.T)
		}
		return done
	}
}

// TestCPUFullRateUpToCores pins that up to Node.Cores concurrent
// Compute charges proceed at full rate: 4 tasks x 1 s on a 4-core node
// finish in ~1 s of virtual time.
func TestCPUFullRateUpToCores(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		if c := task.P.Node.Cores; c != 4 {
			t.Fatalf("default cores = %d, want 4 (Xeon 5130)", c)
		}
		start := task.Now()
		wait := spawnComputers(task, 4, time.Second)
		for _, at := range wait() {
			took := at.Sub(start)
			if took < time.Second || took > 1050*time.Millisecond {
				t.Errorf("4 tasks on 4 cores: finished after %v, want ~1s", took)
			}
		}
	})
}

// TestCPUOversubscriptionDilates pins the dilation: 8 tasks x 1 s on 4
// cores share the processors and finish in ~2 s, and total throughput
// never exceeds the core count.
func TestCPUOversubscriptionDilates(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		start := task.Now()
		wait := spawnComputers(task, 8, time.Second)
		for _, at := range wait() {
			took := at.Sub(start)
			if took < 1900*time.Millisecond || took > 2100*time.Millisecond {
				t.Errorf("8 tasks on 4 cores: finished after %v, want ~2s", took)
			}
		}
	})
}

// TestCPUSuspendedTaskReleasesCore pins the honesty rule a parallel
// checkpoint depends on: a suspended thread (a checkpointed user
// task) stops holding its core share, so checkpoint writer tasks
// running while the application is frozen get the whole machine.
func TestCPUSuspendedTaskReleasesCore(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		// 4 background burners would saturate the node...
		wait := spawnComputers(task, 4, 10*time.Second)
		task.Compute(10 * time.Millisecond) // let them start
		// ...but suspending all of them frees every core.
		var suspended []*Task
		for _, bt := range task.P.Tasks() {
			if bt.Role == "burn" {
				bt.T.Suspend()
				suspended = append(suspended, bt)
			}
		}
		if len(suspended) != 4 {
			t.Fatalf("suspended %d burners, want 4", len(suspended))
		}
		start := task.Now()
		task.Compute(time.Second)
		if took := task.Now().Sub(start); took > 1050*time.Millisecond {
			t.Errorf("compute beside 4 suspended burners took %v, want ~1s", took)
		}
		for _, bt := range suspended {
			bt.T.Resume()
		}
		wait()
	})
}

// TestCPUIdleCores pins the adaptive-sizing signal: an idle node
// reports every core free, load eats into the count one core per
// runnable job, and a fully loaded (or oversubscribed) node still
// reports one — a pool sized from it always makes progress.
func TestCPUIdleCores(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		cpu := task.P.Node.CPU()
		if got := cpu.IdleCores(); got != 4 {
			t.Errorf("idle node IdleCores = %d, want 4", got)
		}
		wait := spawnComputers(task, 2, time.Second)
		task.Idle(time.Millisecond) // let the burners enter Compute
		if got := cpu.IdleCores(); got != 2 {
			t.Errorf("IdleCores beside 2 burners = %d, want 2", got)
		}
		wait()
		wait8 := spawnComputers(task, 8, time.Second)
		task.Idle(time.Millisecond)
		if got := cpu.IdleCores(); got != 1 {
			t.Errorf("IdleCores on an oversubscribed node = %d, want 1", got)
		}
		// Suspending the burners frees their shares again — the state a
		// checkpoint writer sizes itself in (user threads frozen).
		for _, bt := range task.P.Tasks() {
			if bt.Role == "burn" {
				bt.T.Suspend()
			}
		}
		if got := cpu.IdleCores(); got != 4 {
			t.Errorf("IdleCores with all burners suspended = %d, want 4", got)
		}
		for _, bt := range task.P.Tasks() {
			if bt.Role == "burn" {
				bt.T.Resume()
			}
		}
		wait8()
	})
}

// TestCPUSlowNode pins the straggler fault injection: SlowNode(h, 2)
// halves the node's core rate, so identical compute charges take twice
// as long — including charges already in flight, which keep the work
// done at full speed and dilate only the remainder.
func TestCPUSlowNode(t *testing.T) {
	te := newEnv(t, 2)
	te.run(t, func(task *Task) {
		c := task.P.Node.Cluster
		start := task.Now()
		task.Compute(time.Second)
		base := task.Now().Sub(start)

		if !c.SlowNode(task.P.Node.Hostname, 2) {
			t.Fatalf("SlowNode rejected a known host")
		}
		start = task.Now()
		task.Compute(time.Second)
		slowed := task.Now().Sub(start)
		if slowed < 2*base-50*time.Millisecond || slowed > 2*base+50*time.Millisecond {
			t.Errorf("slowed compute took %v, want ~2x baseline %v", slowed, base)
		}

		// The factor applies mid-charge: start at half speed, restore
		// nominal speed halfway through, and total wall time is
		// 1s (half the work at 0.5x) + 0.5s (the rest at 1x).
		start = task.Now()
		done := false
		join := sim.NewWaitQueue(c.Eng, "slow-join")
		task.P.SpawnTask("burn", false, func(bt *Task) {
			bt.Compute(time.Second)
			done = true
			join.WakeAll()
		})
		task.Idle(time.Second) // burner completes 500ms of work at 0.5x
		c.SlowNode(task.P.Node.Hostname, 1)
		for !done {
			join.Wait(task.T)
		}
		took := task.Now().Sub(start)
		if took < 1450*time.Millisecond || took > 1550*time.Millisecond {
			t.Errorf("mid-charge speed change: took %v, want ~1.5s", took)
		}

		if !c.SlowNode("node01", 3) || c.SlowNode("no-such-host", 2) {
			t.Errorf("SlowNode host lookup misbehaved")
		}
		if got := c.LookupHost("node01").CPU().Speed(); got < 0.33 || got > 0.34 {
			t.Errorf("node01 speed = %v, want 1/3", got)
		}
	})
}

// TestCPUKilledTaskReleasesCore pins that killing a process mid-compute
// frees its core shares for the survivors.
func TestCPUKilledTaskReleasesCore(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		var victims []Pid
		for i := 0; i < 4; i++ {
			victims = append(victims, task.ForkFn("victim", func(ct *Task) {
				ct.Compute(time.Hour)
				ct.Exit(0)
			}))
		}
		task.Compute(10 * time.Millisecond)
		for _, pid := range victims {
			if err := task.P.Kern.Kill(pid); err != nil {
				t.Fatalf("kill: %v", err)
			}
		}
		if n := task.P.Node.CPU().Runnable(); n > 1 {
			t.Errorf("runnable after killing all victims = %d, want <= 1", n)
		}
		start := task.Now()
		task.Compute(time.Second)
		if took := task.Now().Sub(start); took > 1050*time.Millisecond {
			t.Errorf("compute after kills took %v, want ~1s", took)
		}
	})
}
