package kernel

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// AreaKind classifies a virtual memory area, mirroring the categories
// visible in /proc/<pid>/maps.
type AreaKind int

const (
	// AreaText is program or library code.
	AreaText AreaKind = iota
	// AreaData is initialized data / BSS.
	AreaData
	// AreaHeap is brk/malloc memory.
	AreaHeap
	// AreaStack is a thread stack.
	AreaStack
	// AreaAnon is an anonymous private mmap.
	AreaAnon
	// AreaShm is a shared mapping backed by a file (mmap MAP_SHARED).
	AreaShm
	// AreaFileMap is a private file-backed mapping.
	AreaFileMap
)

func (k AreaKind) String() string {
	switch k {
	case AreaText:
		return "text"
	case AreaData:
		return "data"
	case AreaHeap:
		return "heap"
	case AreaStack:
		return "stack"
	case AreaAnon:
		return "anon"
	case AreaShm:
		return "shm"
	case AreaFileMap:
		return "filemap"
	default:
		return "unknown"
	}
}

// VMArea is one mapped region of a process address space.  Bytes is
// the modeled (logical) size that checkpoint images account for;
// Payload carries real application state that round-trips through
// checkpoint images byte-exactly.
type VMArea struct {
	Name    string // e.g. "[heap]", "/usr/lib/libfoo.so"
	Kind    AreaKind
	Bytes   int64
	Class   model.MemClass
	Payload []byte

	// Seg links a shared mapping to its segment; nil otherwise.
	Seg *ShmSegment

	// vers counts writes per CkptChunkBytes span; the incremental
	// checkpoint store keys chunk identity on it.  Shared mappings
	// track versions on the segment instead.
	vers []uint64

	// present tracks per-chunk residency for lazily (post-copy)
	// restored areas: a false entry is a chunk whose contents have not
	// been installed yet.  nil means fully resident (the common case —
	// areas not going through a lazy restore never allocate it).
	present []bool
	// absent counts the false entries in present.
	absent int
	// fault resolves a first-touch access to an absent chunk.
	fault FaultHandler
}

// clone returns a private copy of the area (fork semantics: shared
// segments stay shared, private payloads are copied).
func (a *VMArea) clone() *VMArea {
	na := *a
	if a.Seg == nil && a.Payload != nil {
		na.Payload = append([]byte(nil), a.Payload...)
	}
	if a.Seg == nil && a.vers != nil {
		na.vers = append([]uint64(nil), a.vers...)
	}
	if a.Seg == nil && a.present != nil {
		na.present = append([]bool(nil), a.present...)
	}
	return &na
}

// --- dirty-chunk write tracking --------------------------------------

// CkptChunkBytes is the granularity at which writes to memory are
// tracked (and at which the content-addressed checkpoint store chunks
// area payloads).  One counter per 1 MiB keeps tracking overhead
// negligible while exposing dirty-page locality to incremental
// checkpoints.
const CkptChunkBytes int64 = 1 << 20

// ChunkCount returns how many tracking chunks cover n bytes (min 1).
func ChunkCount(n int64) int {
	if n <= 0 {
		return 1
	}
	return int((n + CkptChunkBytes - 1) / CkptChunkBytes)
}

// versSlice lazily sizes a version slice to cover bytes.
func versSlice(v []uint64, bytes int64) []uint64 {
	n := ChunkCount(bytes)
	for len(v) < n {
		v = append(v, 0)
	}
	return v
}

func touchRange(v []uint64, bytes, off, n int64) []uint64 {
	v = versSlice(v, bytes)
	if n <= 0 {
		return v
	}
	lo := off / CkptChunkBytes
	hi := (off + n - 1) / CkptChunkBytes
	for i := lo; i <= hi && int(i) < len(v); i++ {
		v[i]++
	}
	return v
}

func touchFraction(v []uint64, bytes int64, frac float64, salt uint64) []uint64 {
	v = versSlice(v, bytes)
	if frac <= 0 {
		return v
	}
	if frac > 1 {
		frac = 1
	}
	dirty := int(float64(len(v))*frac + 0.5)
	if dirty < 1 {
		dirty = 1
	}
	// Rotate the dirty window with salt so successive intervals touch
	// different (but deterministic) chunks — a moving working set.
	start := int(salt % uint64(len(v)))
	for i := 0; i < dirty; i++ {
		v[(start+i)%len(v)]++
	}
	return v
}

// Touch records a write of n bytes at offset off, dirtying the
// covering chunks.
func (a *VMArea) Touch(off, n int64) {
	if a.Seg != nil {
		a.Seg.Touch(off, n)
		return
	}
	a.vers = touchRange(a.vers, a.Bytes, off, n)
}

// TouchFraction dirties roughly frac of the area's chunks; salt
// rotates which chunks are hit so repeated calls model a moving
// working set deterministically.
func (a *VMArea) TouchFraction(frac float64, salt uint64) {
	if a.Seg != nil {
		a.Seg.TouchFraction(frac, salt)
		return
	}
	a.vers = touchFraction(a.vers, a.Bytes, frac, salt)
}

// ChunkVersions snapshots the per-chunk write versions covering the
// area's current size.
func (a *VMArea) ChunkVersions() []uint64 {
	if a.Seg != nil {
		return a.Seg.ChunkVersions()
	}
	a.vers = versSlice(a.vers, a.Bytes)
	return append([]uint64(nil), a.vers...)
}

// SetVersions installs saved chunk versions (restart restores them so
// post-restart checkpoints keep deduplicating against earlier
// generations).  For shared mappings the versions go to the segment,
// first restorer wins (§4.5: every attached process checkpointed the
// same segment state).
func (a *VMArea) SetVersions(v []uint64) {
	if a.Seg != nil {
		a.Seg.SetVersions(v)
		return
	}
	a.vers = append([]uint64(nil), v...)
}

// --- lazy (post-copy) presence tracking -------------------------------

// FaultHandler resolves a first-touch fault on a lazily-restored area:
// it must make chunk's contents resident (blocking the calling task
// while the chunk is pulled on demand) and mark it present before
// returning nil.  Returning an error propagates to the faulting
// accessor — the restore source is gone.
type FaultHandler func(t *Task, a *VMArea, chunk int) error

// SetLazy arms post-copy restore on a private area: the listed chunk
// indices become absent (their payload bytes are placeholders until
// installed) and h is invoked on first touch.  Shared mappings are
// always installed eagerly and ignore the call.
func (a *VMArea) SetLazy(absent []int, h FaultHandler) {
	if a.Seg != nil {
		return
	}
	n := ChunkCount(a.Bytes)
	a.present = make([]bool, n)
	for i := range a.present {
		a.present[i] = true
	}
	a.absent = 0
	for _, i := range absent {
		if i >= 0 && i < n && a.present[i] {
			a.present[i] = false
			a.absent++
		}
	}
	a.fault = h
	if a.absent == 0 {
		a.present, a.fault = nil, nil
	}
}

// Lazy reports whether any chunk of the area is still absent.
func (a *VMArea) Lazy() bool { return a.absent > 0 }

// ChunkPresent reports whether the given chunk's contents are
// resident.  Fully-resident areas (and shared mappings) always are.
func (a *VMArea) ChunkPresent(idx int) bool {
	if a.present == nil || idx < 0 || idx >= len(a.present) {
		return true
	}
	return a.present[idx]
}

// MarkPresent records that a chunk's contents arrived.  When the last
// absent chunk lands, the presence map and fault hook are dropped so a
// drained area costs nothing.
func (a *VMArea) MarkPresent(idx int) {
	if a.present == nil || idx < 0 || idx >= len(a.present) || a.present[idx] {
		return
	}
	a.present[idx] = true
	a.absent--
	if a.absent == 0 {
		a.present, a.fault = nil, nil
	}
}

// AbsentChunks lists the chunk indices still awaiting contents, in
// ascending order.
func (a *VMArea) AbsentChunks() []int {
	if a.absent == 0 {
		return nil
	}
	out := make([]int, 0, a.absent)
	for i, p := range a.present {
		if !p {
			out = append(out, i)
		}
	}
	return out
}

// InstallChunk copies chunk contents into the payload at the chunk's
// offset (clipped to the real payload length, matching the checkpoint
// writer's payload-prefix chunking) and marks it present.
func (a *VMArea) InstallChunk(idx int, data []byte) {
	off := int64(idx) * CkptChunkBytes
	if off < int64(len(a.Payload)) {
		copy(a.Payload[off:], data)
	}
	a.MarkPresent(idx)
}

// EnsureRange is the fault trap: it makes [off, off+n) resident,
// invoking the fault hook (which blocks t) for each absent covering
// chunk.  Present ranges return immediately at zero cost.
func (a *VMArea) EnsureRange(t *Task, off, n int64) error {
	if a.absent == 0 || n <= 0 {
		return nil
	}
	lo := off / CkptChunkBytes
	hi := (off + n - 1) / CkptChunkBytes
	for i := lo; i <= hi; i++ {
		idx := int(i)
		if a.ChunkPresent(idx) {
			continue
		}
		h := a.fault
		if h == nil {
			return fmt.Errorf("fault on %s chunk %d: no restore source", a.Name, idx)
		}
		if err := h(t, a, idx); err != nil {
			return err
		}
	}
	return nil
}

// AddressSpace is the ordered set of areas mapped by a process.
type AddressSpace struct {
	areas []*VMArea
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace { return &AddressSpace{} }

// Map adds an area and returns it.
func (as *AddressSpace) Map(a *VMArea) *VMArea {
	as.areas = append(as.areas, a)
	return a
}

// MapAnon maps an anonymous area with the given name, size and class.
func (as *AddressSpace) MapAnon(name string, bytes int64, class model.MemClass) *VMArea {
	return as.Map(&VMArea{Name: name, Kind: AreaAnon, Bytes: bytes, Class: class})
}

// Unmap removes the given area.
func (as *AddressSpace) Unmap(a *VMArea) {
	for i, x := range as.areas {
		if x == a {
			as.areas = append(as.areas[:i], as.areas[i+1:]...)
			return
		}
	}
}

// Area returns the first area with the given name, or nil.
func (as *AddressSpace) Area(name string) *VMArea {
	for _, a := range as.areas {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Areas returns the areas in mapping order.  The returned slice must
// not be mutated.
func (as *AddressSpace) Areas() []*VMArea { return as.areas }

// NumAreas returns the number of mapped areas.
func (as *AddressSpace) NumAreas() int { return len(as.areas) }

// RSS returns the total resident size in bytes.
func (as *AddressSpace) RSS() int64 {
	var n int64
	for _, a := range as.areas {
		n += a.Bytes
	}
	return n
}

// clone implements fork: private areas are copied (COW collapsed to a
// copy; the fork *cost* is charged by the caller), shared mappings
// alias the same segment.
func (as *AddressSpace) clone() *AddressSpace {
	na := &AddressSpace{areas: make([]*VMArea, 0, len(as.areas))}
	for _, a := range as.areas {
		na.areas = append(na.areas, a.clone())
	}
	return na
}

// Maps renders a /proc/<pid>/maps-like listing, sorted by area name
// within mapping order; DMTCP uses it to probe process state.
func (as *AddressSpace) Maps() []string {
	out := make([]string, 0, len(as.areas))
	for _, a := range as.areas {
		out = append(out, fmt.Sprintf("%-8s %10d %s", a.Kind, a.Bytes, a.Name))
	}
	return out
}

// ShmSegment is a shared-memory object backed by a file path on a
// node (mmap of a file with MAP_SHARED, or POSIX shm under /dev/shm).
type ShmSegment struct {
	ID      int64
	Node    *Node
	Backing string // backing file path
	Bytes   int64
	Class   model.MemClass
	Payload []byte
	refs    int

	// vers tracks per-chunk writes; shared by every attached area.
	vers []uint64
}

// Touch records a write of n bytes at offset off.
func (s *ShmSegment) Touch(off, n int64) {
	s.vers = touchRange(s.vers, s.Bytes, off, n)
}

// TouchFraction dirties roughly frac of the segment's chunks.
func (s *ShmSegment) TouchFraction(frac float64, salt uint64) {
	s.vers = touchFraction(s.vers, s.Bytes, frac, salt)
}

// ChunkVersions snapshots the segment's per-chunk write versions.
func (s *ShmSegment) ChunkVersions() []uint64 {
	s.vers = versSlice(s.vers, s.Bytes)
	return append([]uint64(nil), s.vers...)
}

// SetVersions installs saved versions into a freshly re-created
// segment; segments that have already been written to (or restored)
// keep their live counters.
func (s *ShmSegment) SetVersions(v []uint64) {
	if len(s.vers) != 0 || len(v) == 0 {
		return
	}
	s.vers = append([]uint64(nil), v...)
}

// Attach maps the segment into as under the given area name.
func (s *ShmSegment) Attach(as *AddressSpace, name string) *VMArea {
	s.refs++
	return as.Map(&VMArea{
		Name:  name,
		Kind:  AreaShm,
		Bytes: s.Bytes,
		Class: s.Class,
		Seg:   s,
	})
}

// Detach releases one reference.
func (s *ShmSegment) Detach() {
	if s.refs > 0 {
		s.refs--
	}
}

// Refs returns the current attachment count.
func (s *ShmSegment) Refs() int { return s.refs }

// sortedAreaNames is a test helper ordering for deterministic output.
func sortedAreaNames(as *AddressSpace) []string {
	names := make([]string, 0, len(as.areas))
	for _, a := range as.areas {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}
