package kernel

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// AreaKind classifies a virtual memory area, mirroring the categories
// visible in /proc/<pid>/maps.
type AreaKind int

const (
	// AreaText is program or library code.
	AreaText AreaKind = iota
	// AreaData is initialized data / BSS.
	AreaData
	// AreaHeap is brk/malloc memory.
	AreaHeap
	// AreaStack is a thread stack.
	AreaStack
	// AreaAnon is an anonymous private mmap.
	AreaAnon
	// AreaShm is a shared mapping backed by a file (mmap MAP_SHARED).
	AreaShm
	// AreaFileMap is a private file-backed mapping.
	AreaFileMap
)

func (k AreaKind) String() string {
	switch k {
	case AreaText:
		return "text"
	case AreaData:
		return "data"
	case AreaHeap:
		return "heap"
	case AreaStack:
		return "stack"
	case AreaAnon:
		return "anon"
	case AreaShm:
		return "shm"
	case AreaFileMap:
		return "filemap"
	default:
		return "unknown"
	}
}

// VMArea is one mapped region of a process address space.  Bytes is
// the modeled (logical) size that checkpoint images account for;
// Payload carries real application state that round-trips through
// checkpoint images byte-exactly.
type VMArea struct {
	Name    string // e.g. "[heap]", "/usr/lib/libfoo.so"
	Kind    AreaKind
	Bytes   int64
	Class   model.MemClass
	Payload []byte

	// Seg links a shared mapping to its segment; nil otherwise.
	Seg *ShmSegment
}

// clone returns a private copy of the area (fork semantics: shared
// segments stay shared, private payloads are copied).
func (a *VMArea) clone() *VMArea {
	na := *a
	if a.Seg == nil && a.Payload != nil {
		na.Payload = append([]byte(nil), a.Payload...)
	}
	return &na
}

// AddressSpace is the ordered set of areas mapped by a process.
type AddressSpace struct {
	areas []*VMArea
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace { return &AddressSpace{} }

// Map adds an area and returns it.
func (as *AddressSpace) Map(a *VMArea) *VMArea {
	as.areas = append(as.areas, a)
	return a
}

// MapAnon maps an anonymous area with the given name, size and class.
func (as *AddressSpace) MapAnon(name string, bytes int64, class model.MemClass) *VMArea {
	return as.Map(&VMArea{Name: name, Kind: AreaAnon, Bytes: bytes, Class: class})
}

// Unmap removes the given area.
func (as *AddressSpace) Unmap(a *VMArea) {
	for i, x := range as.areas {
		if x == a {
			as.areas = append(as.areas[:i], as.areas[i+1:]...)
			return
		}
	}
}

// Area returns the first area with the given name, or nil.
func (as *AddressSpace) Area(name string) *VMArea {
	for _, a := range as.areas {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Areas returns the areas in mapping order.  The returned slice must
// not be mutated.
func (as *AddressSpace) Areas() []*VMArea { return as.areas }

// NumAreas returns the number of mapped areas.
func (as *AddressSpace) NumAreas() int { return len(as.areas) }

// RSS returns the total resident size in bytes.
func (as *AddressSpace) RSS() int64 {
	var n int64
	for _, a := range as.areas {
		n += a.Bytes
	}
	return n
}

// clone implements fork: private areas are copied (COW collapsed to a
// copy; the fork *cost* is charged by the caller), shared mappings
// alias the same segment.
func (as *AddressSpace) clone() *AddressSpace {
	na := &AddressSpace{areas: make([]*VMArea, 0, len(as.areas))}
	for _, a := range as.areas {
		na.areas = append(na.areas, a.clone())
	}
	return na
}

// Maps renders a /proc/<pid>/maps-like listing, sorted by area name
// within mapping order; DMTCP uses it to probe process state.
func (as *AddressSpace) Maps() []string {
	out := make([]string, 0, len(as.areas))
	for _, a := range as.areas {
		out = append(out, fmt.Sprintf("%-8s %10d %s", a.Kind, a.Bytes, a.Name))
	}
	return out
}

// ShmSegment is a shared-memory object backed by a file path on a
// node (mmap of a file with MAP_SHARED, or POSIX shm under /dev/shm).
type ShmSegment struct {
	ID      int64
	Node    *Node
	Backing string // backing file path
	Bytes   int64
	Class   model.MemClass
	Payload []byte
	refs    int
}

// Attach maps the segment into as under the given area name.
func (s *ShmSegment) Attach(as *AddressSpace, name string) *VMArea {
	s.refs++
	return as.Map(&VMArea{
		Name:  name,
		Kind:  AreaShm,
		Bytes: s.Bytes,
		Class: s.Class,
		Seg:   s,
	})
}

// Detach releases one reference.
func (s *ShmSegment) Detach() {
	if s.refs > 0 {
		s.refs--
	}
}

// Refs returns the current attachment count.
func (s *ShmSegment) Refs() int { return s.refs }

// sortedAreaNames is a test helper ordering for deterministic output.
func sortedAreaNames(as *AddressSpace) []string {
	names := make([]string, 0, len(as.areas))
	for _, a := range as.areas {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}
