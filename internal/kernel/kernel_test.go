package kernel

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// testEnv bundles a cluster whose engine stops when the designated
// main program finishes.
type testEnv struct {
	eng *sim.Engine
	c   *Cluster
}

func newEnv(t *testing.T, nodes int) *testEnv {
	t.Helper()
	eng := sim.NewEngine(1)
	c := NewCluster(eng, model.Default(), nodes)
	t.Cleanup(eng.Shutdown)
	return &testEnv{eng: eng, c: c}
}

// run registers main as a program, spawns it on node 0, and runs the
// simulation until it finishes.
func (te *testEnv) run(t *testing.T, main func(*Task)) {
	t.Helper()
	te.c.RegisterFunc("test-main", func(task *Task, _ []string) {
		main(task)
		te.eng.Stop()
	})
	if _, err := te.c.Node(0).Kern.Spawn("test-main", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := te.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnExitWait(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		pid := task.ForkFn("child", func(ct *Task) {
			ct.Compute(time.Millisecond)
			ct.Exit(7)
		})
		code, err := task.WaitPid(pid)
		if err != nil {
			t.Errorf("waitpid: %v", err)
		}
		if code != 7 {
			t.Errorf("exit code = %d, want 7", code)
		}
	})
}

func TestWaitAnyReapsAll(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		for i := 0; i < 3; i++ {
			i := i
			task.ForkFn("c", func(ct *Task) { ct.Exit(i) })
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			_, code, err := task.WaitAny()
			if err != nil {
				t.Errorf("wait: %v", err)
			}
			seen[code] = true
		}
		if len(seen) != 3 {
			t.Errorf("codes = %v", seen)
		}
		if _, _, err := task.WaitAny(); err == nil {
			t.Error("wait with no children should fail")
		}
	})
}

func TestForkCopiesMemorySharesShm(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		p := task.P
		a := task.MapAnon("[heap]", 4*model.MB, model.ClassData)
		a.Payload = []byte("parent")
		seg := task.ShmCreate("/dev/shm/seg1", 1*model.MB, model.ClassData)
		seg.Payload = []byte("shared-v1")

		done := make(chan struct{}) // host-side sync not needed; use wait
		_ = done
		pid := task.ForkFn("child", func(ct *Task) {
			ca := ct.P.Mem.Area("[heap]")
			if string(ca.Payload) != "parent" {
				t.Errorf("child heap payload = %q", ca.Payload)
			}
			ca.Payload = []byte("child")
			cs := ct.P.Mem.Area("/dev/shm/seg1")
			if cs.Seg != seg {
				t.Error("child shm not shared")
			}
			cs.Seg.Payload = []byte("shared-v2")
			ct.Exit(0)
		})
		task.WaitPid(pid)
		if string(p.Mem.Area("[heap]").Payload) != "parent" {
			t.Error("child write leaked into parent private area")
		}
		if string(seg.Payload) != "shared-v2" {
			t.Error("shared segment write not visible to parent")
		}
	})
}

func TestTCPRoundtripAndEOF(t *testing.T) {
	te := newEnv(t, 2)
	te.c.RegisterFunc("server", func(task *Task, _ []string) {
		lfd, err := task.ListenTCP(9000)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		cfd, err := task.Accept(lfd)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		data, err := task.RecvN(cfd, 5)
		if err != nil || string(data) != "hello" {
			t.Errorf("server recv = %q, %v", data, err)
		}
		task.Send(cfd, []byte("world"))
		task.Close(cfd)
	})
	te.c.Node(1).Kern.Spawn("server", nil, nil)
	te.run(t, func(task *Task) {
		fd := task.Socket()
		if err := task.Connect(fd, Addr{Host: "node01", Port: 9000}); err != nil {
			t.Fatalf("connect: %v", err)
		}
		task.Send(fd, []byte("hello"))
		data, err := task.RecvN(fd, 5)
		if err != nil || string(data) != "world" {
			t.Errorf("client recv = %q, %v", data, err)
		}
		if _, err := task.Recv(fd, 10); err != io.EOF {
			t.Errorf("expected EOF after peer close, got %v", err)
		}
	})
}

func TestConnectRefused(t *testing.T) {
	te := newEnv(t, 2)
	te.run(t, func(task *Task) {
		fd := task.Socket()
		err := task.Connect(fd, Addr{Host: "node01", Port: 12345})
		if !errors.Is(err, ErrConnRefused) {
			t.Errorf("err = %v, want refused", err)
		}
		err = task.Connect(task.Socket(), Addr{Host: "nosuch", Port: 1})
		if !errors.Is(err, ErrConnRefused) {
			t.Errorf("unknown host err = %v", err)
		}
	})
}

func TestFlowControlWindowBounded(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		a, b := task.SocketPair()
		bufCap := int(task.P.params().SocketBufBytes)
		payload := bytes.Repeat([]byte("x"), 3*bufCap)
		var sent bool
		task.P.SpawnTask("sender", false, func(st *Task) {
			st.Send(a, payload)
			sent = true
		})
		// Give the sender time: it must stall with ≤ bufCap in flight.
		task.Compute(100 * time.Millisecond)
		ep, _ := task.streamFor(b)
		if got := ep.Buffered() + int(ep.InFlight()); got > bufCap {
			t.Errorf("window overrun: %d > %d", got, bufCap)
		}
		if sent {
			t.Error("sender completed without receiver draining")
		}
		got, err := task.RecvN(b, len(payload))
		if err != nil || !bytes.Equal(got, payload) {
			t.Errorf("stream corrupted: %d bytes, %v", len(got), err)
		}
	})
}

func TestRecvTimeout(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		a, _ := task.SocketPair()
		start := task.Now()
		_, err := task.RecvTimeout(a, 10, sim.Time(50*time.Millisecond))
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want timeout", err)
		}
		if el := task.Now().Sub(start); el < 50*time.Millisecond {
			t.Errorf("returned too early: %v", el)
		}
	})
}

// Property: arbitrary chunked writes arrive intact and in order.
func TestStreamIntegrityProperty(t *testing.T) {
	prop := func(chunks [][]byte) bool {
		var want []byte
		for _, c := range chunks {
			want = append(want, c...)
		}
		if len(want) > 1<<18 {
			return true // keep runtime bounded
		}
		ok := true
		te := newEnv(t, 2)
		te.c.RegisterFunc("sink", func(task *Task, _ []string) {
			lfd, _ := task.ListenTCP(9001)
			cfd, _ := task.Accept(lfd)
			got, err := task.RecvN(cfd, len(want))
			if err != nil || !bytes.Equal(got, want) {
				ok = false
			}
		})
		te.c.Node(1).Kern.Spawn("sink", nil, nil)
		te.run(t, func(task *Task) {
			fd := task.Socket()
			if err := task.Connect(fd, Addr{Host: "node01", Port: 9001}); err != nil {
				ok = false
				return
			}
			for _, c := range chunks {
				task.Send(fd, c)
			}
			// Wait for the sink to finish reading.
			task.Compute(2 * time.Second)
		})
		return ok
	}
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPipeRoundtripAndEOF(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		r, w := task.Pipe()
		task.P.SpawnTask("writer", false, func(wt *Task) {
			wt.PipeWrite(w, []byte("through the pipe"))
			wt.Close(w)
		})
		var got []byte
		for {
			chunk, err := task.PipeRead(r, 4)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Errorf("read: %v", err)
				break
			}
			got = append(got, chunk...)
		}
		if string(got) != "through the pipe" {
			t.Errorf("got %q", got)
		}
	})
}

func TestPtyModesAndData(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		mfd, name := task.Openpt()
		sfd, err := task.OpenPts(name)
		if err != nil {
			t.Fatalf("openpts: %v", err)
		}
		modes, _ := task.TcGetAttr(sfd)
		if !modes.Echo || !modes.Canon {
			t.Error("default termios should be echo+canon")
		}
		modes.Echo = false
		task.TcSetAttr(sfd, modes)
		if m2, _ := task.TcGetAttr(mfd); m2.Echo {
			t.Error("termios change not shared between ends")
		}
		if err := task.SetCtrlTerminal(sfd); err != nil {
			t.Errorf("setctty: %v", err)
		}
		task.Send(mfd, []byte("ls\n"))
		got, err := task.RecvN(sfd, 3)
		if err != nil || string(got) != "ls\n" {
			t.Errorf("slave got %q, %v", got, err)
		}
	})
}

func TestFileIOAndSanRouting(t *testing.T) {
	te := newEnv(t, 2)
	te.c.Node(0).SANDirect = true
	te.run(t, func(task *Task) {
		fd, _ := task.Create("/tmp/x")
		task.Write(fd, []byte("abcdef"))
		task.Close(fd)
		fd2, err := task.Open("/tmp/x")
		if err != nil {
			t.Fatal(err)
		}
		got, _ := task.Read(fd2, 6)
		if string(got) != "abcdef" {
			t.Errorf("read back %q", got)
		}
		// /san files are visible cluster-wide.
		task.WriteFileAll("/san/shared.txt", []byte("central"), 0)
		if !te.c.Node(1).FS.Exists("/san/shared.txt") {
			t.Error("/san file not visible from other node")
		}
		// Large local write must consume virtual time (disk model).
		start := task.Now()
		task.WriteFileAll("/tmp/big", nil, 240*model.MB)
		if el := task.Now().Sub(start); el < 500*time.Millisecond {
			t.Errorf("240MB write took only %v", el)
		}
	})
}

func TestFcntlOwnerSharedAcrossFork(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		a, _ := task.SocketPair()
		task.Fcntl(a, FSetOwn, task.P.Pid)
		pid := task.ForkFn("child", func(ct *Task) {
			// Shared description: child sees the parent's owner, then
			// overwrites it (last-writer-wins election primitive).
			if own, _ := ct.Fcntl(a, FGetOwn, 0); own != ct.P.PPid {
				t.Errorf("child sees owner %d, want parent pid %d", own, ct.P.PPid)
			}
			ct.Fcntl(a, FSetOwn, ct.P.Pid)
			ct.Exit(0)
		})
		task.WaitPid(pid)
		if own, _ := task.Fcntl(a, FGetOwn, 0); own != pid {
			t.Errorf("parent sees owner %d, want child pid %d (last writer)", own, pid)
		}
	})
}

func TestDup2AndRefcounts(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		a, b := task.SocketPair()
		of, _ := task.P.FD(a)
		if of.Refs() != 1 {
			t.Fatalf("refs = %d", of.Refs())
		}
		task.Dup2(a, 10)
		if of.Refs() != 2 {
			t.Fatalf("refs after dup2 = %d", of.Refs())
		}
		task.Close(a)
		if of.Refs() != 1 {
			t.Fatalf("refs after close = %d", of.Refs())
		}
		// Writing via the dup'd descriptor still works.
		task.Send(10, []byte("via dup"))
		got, _ := task.RecvN(b, 7)
		if string(got) != "via dup" {
			t.Errorf("got %q", got)
		}
		task.Close(10)
		if _, err := task.Recv(b, 1); err != io.EOF {
			t.Errorf("expected EOF after last ref closed, got %v", err)
		}
	})
}

func TestForkSharesSocketDescriptions(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		a, b := task.SocketPair()
		pid := task.ForkFn("child", func(ct *Task) {
			ct.Send(a, []byte("from child"))
			ct.Exit(0)
		})
		task.WaitPid(pid)
		got, err := task.RecvN(b, 10)
		if err != nil || string(got) != "from child" {
			t.Errorf("got %q, %v", got, err)
		}
	})
}

func TestSSHRemoteSpawnCarriesEnv(t *testing.T) {
	te := newEnv(t, 2)
	StartInfra(te.c)
	gotEnv := make(chan string, 1)
	te.c.RegisterFunc("remote-job", func(task *Task, args []string) {
		gotEnv <- task.P.Env["MARKER"] + "/" + args[0]
	})
	te.run(t, func(task *Task) {
		task.P.Env["MARKER"] = "m1"
		if err := task.SSHSpawn("node01", "remote-job", "arg0"); err != nil {
			t.Fatalf("ssh: %v", err)
		}
		task.Compute(10 * time.Millisecond)
	})
	select {
	case v := <-gotEnv:
		if v != "m1/arg0" {
			t.Errorf("remote job saw %q", v)
		}
	default:
		t.Error("remote job never ran")
	}
}

// recordingHooks verifies interposition coverage.
type recordingHooks struct {
	BaseHooks
	events *[]string
	vpid   Pid
}

func (h *recordingHooks) Start(t *Task) { *h.events = append(*h.events, "start") }
func (h *recordingHooks) PostSocket(t *Task, fd int, of *OpenFile) {
	*h.events = append(*h.events, fmt.Sprintf("socket:%d", fd))
}
func (h *recordingHooks) PostConnect(t *Task, fd int, of *OpenFile) {
	*h.events = append(*h.events, "connect")
}
func (h *recordingHooks) PostAccept(t *Task, fd int, of *OpenFile) {
	*h.events = append(*h.events, "accept")
}
func (h *recordingHooks) RewriteExec(t *Task, prog string, args []string) (string, []string) {
	*h.events = append(*h.events, "exec:"+prog)
	return prog, args
}
func (h *recordingHooks) Getpid(p *Process) (Pid, bool) { return h.vpid, true }
func (h *recordingHooks) PipeOverride(t *Task) (int, int, bool) {
	*h.events = append(*h.events, "pipe-promoted")
	a, b := t.SocketPair()
	return a, b, true
}

func TestHooksInstallAndInterpose(t *testing.T) {
	te := newEnv(t, 2)
	var events []string
	te.c.HookFactory = func(p *Process) Hooks {
		return &recordingHooks{events: &events, vpid: 4242}
	}
	te.c.RegisterFunc("noop", func(task *Task, _ []string) {})
	te.c.RegisterFunc("hooked", func(task *Task, _ []string) {
		if task.Getpid() != 4242 {
			t.Error("getpid not virtualized")
		}
		fd := task.Socket()
		_ = fd
		r, w := task.Pipe()
		_, _ = r, w
		pid := task.ForkFn("c", func(ct *Task) {
			ct.Exec("noop", nil)
		})
		task.WaitPid(pid)
		te.eng.Stop()
	})
	env := map[string]string{LDPreloadVar: HijackLib}
	if _, err := te.c.Node(0).Kern.Spawn("hooked", nil, env); err != nil {
		t.Fatal(err)
	}
	if err := te.eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"start": true, "socket:3": true, "pipe-promoted": true, "exec:noop": true}
	for w := range want {
		found := false
		for _, ev := range events {
			if ev == w {
				found = true
			}
		}
		if !found {
			t.Errorf("hook event %q missing from %v", w, events)
		}
	}
}

// conflictHooks forces one PostFork rejection to exercise the
// re-fork path (§4.5 virtual pid conflicts).
type conflictHooks struct {
	BaseHooks
	rejected *int
}

func (h *conflictHooks) PostFork(parent, child *Process) bool {
	if *h.rejected == 0 {
		*h.rejected = int(child.Pid)
		return false
	}
	return true
}

func TestForkRetryOnPidConflict(t *testing.T) {
	te := newEnv(t, 1)
	rejected := 0
	te.c.HookFactory = func(p *Process) Hooks { return &conflictHooks{rejected: &rejected} }
	te.c.RegisterFunc("forker", func(task *Task, _ []string) {
		pid := task.ForkFn("child", func(ct *Task) { ct.Exit(0) })
		if int(pid) == rejected {
			t.Errorf("conflicting pid %d reused", pid)
		}
		task.WaitPid(pid)
		te.eng.Stop()
	})
	env := map[string]string{LDPreloadVar: HijackLib}
	te.c.Node(0).Kern.Spawn("forker", nil, env)
	if err := te.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rejected == 0 {
		t.Fatal("PostFork rejection never exercised")
	}
}

func TestCriticalSectionBlocksDuringPendingCkpt(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		p := task.P
		var entered sim.Time
		worker := p.SpawnTask("worker", false, func(wt *Task) {
			wt.Compute(10 * time.Millisecond) // pending set at 5ms
			wt.BeginCritical()
			entered = wt.Now()
			wt.EndCritical()
		})
		task.Compute(5 * time.Millisecond)
		p.CkptPending = true
		task.Compute(20 * time.Millisecond) // worker must be blocked now
		p.CkptPending = false
		p.ResumeW.WakeAll()
		worker.T.Join(task.T)
		if entered < sim.Time(25*time.Millisecond) {
			t.Errorf("critical section entered at %v during pending checkpoint", entered)
		}
	})
}

func TestSendContinuationCapturedWhenSuspended(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		a, b := task.SocketPair()
		bufCap := int(task.P.params().SocketBufBytes)
		payload := bytes.Repeat([]byte("z"), 2*bufCap)
		var sender *Task
		sender = task.P.SpawnTask("sender", false, func(st *Task) {
			st.Send(a, payload)
		})
		task.Compute(50 * time.Millisecond) // sender now stalled on window
		sender.T.Suspend()
		cont := sender.SendContinuation()
		if cont == nil {
			// NOTE: t.Fatal would Goexit out of the sim thread and
			// wedge the engine; report and bail out normally instead.
			t.Error("no send continuation captured")
			sender.T.Resume()
			return
		}
		if cont.FD != a {
			t.Errorf("continuation fd = %d, want %d", cont.FD, a)
		}
		if len(cont.Remaining) == 0 || len(cont.Remaining) >= len(payload) {
			t.Errorf("continuation remaining = %d of %d", len(cont.Remaining), len(payload))
		}
		// The captured tail plus delivered bytes must reconstruct the
		// stream exactly.
		delivered := len(payload) - len(cont.Remaining)
		got, _ := task.RecvN(b, delivered)
		got = append(got, cont.Remaining...)
		if !bytes.Equal(got, payload) {
			t.Error("continuation does not reconstruct the stream")
		}
		sender.T.Resume()
	})
}

func TestConsoleStdout(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		task.Printf("hello %s", "console")
		task.Write(1, []byte("!"))
		if got := task.P.Stdout.String(); got != "hello console!" {
			t.Errorf("stdout = %q", got)
		}
	})
}

func TestProcessesListingAndKill(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		pid := task.ForkFn("spin", func(ct *Task) {
			for {
				ct.Compute(time.Second)
			}
		})
		if n := len(task.P.Kern.Processes()); n != 2 {
			t.Errorf("processes = %d, want 2", n)
		}
		if err := task.P.Kern.Kill(pid); err != nil {
			t.Errorf("kill: %v", err)
		}
		if _, code, err := task.WaitAny(); err != nil || code != 9 {
			t.Errorf("reaped code=%d err=%v", code, err)
		}
	})
}

func TestMapsListing(t *testing.T) {
	te := newEnv(t, 1)
	te.run(t, func(task *Task) {
		task.MapLib("/usr/lib/libm.so", 2*model.MB)
		task.MapAnon("[heap]", 8*model.MB, model.ClassData)
		maps := task.P.Mem.Maps()
		if len(maps) != 2 {
			t.Fatalf("maps = %v", maps)
		}
		if task.P.Mem.RSS() != 10*model.MB {
			t.Errorf("rss = %d", task.P.Mem.RSS())
		}
	})
}
