package kernel

import (
	"errors"
	"repro/internal/sim"
	"testing"
	"time"
)

// echoSink registers a server on node 1 that accepts one connection
// and records everything it reads, with receive timestamps.
type sinkState struct {
	got     []byte
	lastAt  time.Duration
	gotEOF  bool
	started bool
}

func startSink(t *testing.T, te *testEnv, port int) *sinkState {
	t.Helper()
	st := &sinkState{}
	te.c.RegisterFunc("fault-sink", func(task *Task, _ []string) {
		st.started = true
		lfd, err := task.ListenTCP(port)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		cfd, err := task.Accept(lfd)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		for {
			data, err := task.Recv(cfd, 1<<20)
			if len(data) > 0 {
				st.got = append(st.got, data...)
				st.lastAt = task.Now().Duration()
			}
			if err != nil {
				st.gotEOF = true
				return
			}
		}
	})
	if _, err := te.c.Node(1).Kern.Spawn("fault-sink", nil, nil); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPartitionParksAndHealsInOrder(t *testing.T) {
	te := newEnv(t, 2)
	st := startSink(t, te, 9100)
	te.run(t, func(task *Task) {
		fd := task.Socket()
		if err := task.Connect(fd, Addr{Host: "node01", Port: 9100}); err != nil {
			t.Fatalf("connect: %v", err)
		}
		task.Send(fd, []byte("aaa"))
		task.Compute(10 * time.Millisecond)
		id := te.c.IsolateHost("node01")
		task.Send(fd, []byte("bbb"))
		task.Send(fd, []byte("ccc"))
		task.Compute(100 * time.Millisecond)
		if string(st.got) != "aaa" {
			t.Errorf("during partition sink got %q, want %q", st.got, "aaa")
		}
		healAt := task.Now().Duration()
		te.c.HealFault(id)
		task.Close(fd)
		task.Compute(100 * time.Millisecond)
		if string(st.got) != "aaabbbccc" {
			t.Errorf("after heal sink got %q, want %q", st.got, "aaabbbccc")
		}
		if st.lastAt < healAt {
			t.Errorf("parked bytes arrived at %v, before heal at %v", st.lastAt, healAt)
		}
		if !st.gotEOF {
			t.Errorf("parked FIN never delivered after heal")
		}
	})
}

func TestPartitionBlocksNewConnections(t *testing.T) {
	te := newEnv(t, 2)
	startSink(t, te, 9101)
	te.run(t, func(task *Task) {
		task.Compute(5 * time.Millisecond) // let the sink listen
		id := te.c.PartitionHosts([]string{"node00"}, []string{"node01"})
		fd := task.Socket()
		err := task.Connect(fd, Addr{Host: "node01", Port: 9101})
		if !errors.Is(err, ErrConnRefused) {
			t.Errorf("connect across partition = %v, want ErrConnRefused", err)
		}
		task.Close(fd)
		te.c.HealFault(id)
		fd2 := task.Socket()
		if err := task.Connect(fd2, Addr{Host: "node01", Port: 9101}); err != nil {
			t.Errorf("connect after heal: %v", err)
		}
		task.Close(fd2)
	})
}

func TestOneWayPartitionIsAsymmetric(t *testing.T) {
	te := newEnv(t, 2)
	var clientGot []byte
	te.c.RegisterFunc("oneway-server", func(task *Task, _ []string) {
		lfd, _ := task.ListenTCP(9102)
		cfd, err := task.Accept(lfd)
		if err != nil {
			return
		}
		// Server talks regardless of what it hears.
		task.Send(cfd, []byte("pong"))
		task.Compute(500 * time.Millisecond)
	})
	te.c.Node(1).Kern.Spawn("oneway-server", nil, nil)
	te.run(t, func(task *Task) {
		fd := task.Socket()
		if err := task.Connect(fd, Addr{Host: "node01", Port: 9102}); err != nil {
			t.Fatalf("connect: %v", err)
		}
		// Client→server direction only.
		te.c.InjectFault(FaultRule{
			Src: []string{"node00"}, Dst: []string{"node01"},
			OneWay: true, Partition: true,
		})
		task.Send(fd, []byte("ping"))
		data, err := task.RecvTimeout(fd, 16, sim.Time(200*time.Millisecond))
		if err != nil {
			t.Fatalf("recv on the open direction: %v", err)
		}
		clientGot = append(clientGot, data...)
		if string(clientGot) != "pong" {
			t.Errorf("client got %q, want %q (reverse direction must flow)", clientGot, "pong")
		}
		te.c.HealAllFaults()
	})
}

func TestDropDelaysDelivery(t *testing.T) {
	elapsedFor := func(rule *FaultRule) time.Duration {
		te := newEnv(t, 2)
		st := startSink(t, te, 9103)
		var elapsed time.Duration
		te.run(t, func(task *Task) {
			fd := task.Socket()
			if err := task.Connect(fd, Addr{Host: "node01", Port: 9103}); err != nil {
				t.Fatalf("connect: %v", err)
			}
			if rule != nil {
				te.c.InjectFault(*rule)
			}
			start := task.Now().Duration()
			task.Send(fd, []byte("payload"))
			task.Compute(3 * time.Second)
			if string(st.got) != "payload" {
				t.Fatalf("sink got %q", st.got)
			}
			elapsed = st.lastAt - start
		})
		return elapsed
	}
	base := elapsedFor(nil)
	lossy := elapsedFor(&FaultRule{Drop: 1.0}) // every transmission lost k times
	if lossy < base+100*time.Millisecond {
		t.Errorf("drop=1.0 delivery took %v vs clean %v; want retransmission backoff", lossy, base)
	}
	slow := elapsedFor(&FaultRule{ExtraLatency: 80 * time.Millisecond})
	if slow < base+70*time.Millisecond {
		t.Errorf("extra-latency delivery took %v vs clean %v; want ≥ +70ms", slow, base)
	}
}

func TestRefuseWindowLeavesEstablishedFlows(t *testing.T) {
	te := newEnv(t, 2)
	st := startSink(t, te, 9104)
	te.run(t, func(task *Task) {
		fd := task.Socket()
		if err := task.Connect(fd, Addr{Host: "node01", Port: 9104}); err != nil {
			t.Fatalf("connect: %v", err)
		}
		id := te.c.InjectFault(FaultRule{Src: []string{"node00"}, Dst: []string{"node01"}, Refuse: true})
		// Established flow keeps running...
		task.Send(fd, []byte("still-works"))
		task.Compute(50 * time.Millisecond)
		if string(st.got) != "still-works" {
			t.Errorf("established flow under refuse got %q", st.got)
		}
		// ...while new connections are refused.
		fd2 := task.Socket()
		if err := task.Connect(fd2, Addr{Host: "node01", Port: 9104}); !errors.Is(err, ErrConnRefused) {
			t.Errorf("connect in refuse window = %v, want ErrConnRefused", err)
		}
		task.Close(fd2)
		te.c.HealFault(id)
	})
}
