package kernel

import (
	"time"

	"repro/internal/obs"
)

// Network fault injection.  KillNode models fail-stop; real clusters
// mostly degrade instead: switches partition racks, overloaded links
// drop and delay frames, and a rebooting peer refuses connections for
// a window.  FaultRule describes one such condition between host
// sets; rules are injected and healed at virtual times and applied
// uniformly to every stream the kernel carries — manager↔coordinator
// RPCs, replica want/missing handshakes, eager/pull chunk streams,
// and coordinator journal ships all ride the same TCPEndpoint
// machinery, so none of them gets to cheat.
//
// Semantics:
//
//   - Partition parks frames instead of delivering them: bytes sent
//     into a partitioned link are held (still counting against the
//     sender's transmit window, so senders see backpressure exactly
//     as real TCP would) and delivered in order when the rule heals —
//     the "network was wedged, then un-wedged" shape that exposes
//     split-brain bugs, as opposed to the clean connection reset a
//     node death produces.  New connections across a partition fail
//     with ErrConnRefused after the SYN timeout.
//   - Drop models a lossy link as retransmission delay: each frame
//     independently loses its first k transmissions with probability
//     Drop each, and arrives after the corresponding capped
//     exponential RTO backoff.  Stream bytes are never actually lost
//     (TCP retransmits); framing above the socket layer stays intact.
//   - ExtraLatency (+JitterPct) adds per-frame one-way delay.
//   - Refuse fails new connection attempts across the link while the
//     rule is active but leaves established flows untouched (a peer
//     whose accept loop is wedged, a firewall rule, a listen backlog
//     overflow).
//
// Loopback traffic (src node == dst node) is always exempt: a machine
// cannot be partitioned from itself.
type FaultRule struct {
	// Src and Dst are hostname sets; an empty set matches every host.
	// A rule applies to a frame src→dst when src∈Src and dst∈Dst, or —
	// unless OneWay — when src∈Dst and dst∈Src (symmetric).
	Src, Dst []string
	// OneWay restricts the rule to the Src→Dst direction (asymmetric
	// partition: A's frames to B vanish while B's replies flow).
	OneWay bool

	// Partition parks frames on the link until the rule heals.
	Partition bool
	// Drop is the per-transmission loss probability modeled as
	// retransmission delay.
	Drop float64
	// ExtraLatency is added one-way delay per frame; JitterPct
	// perturbs it by ±JitterPct per frame (seeded engine RNG).
	ExtraLatency time.Duration
	JitterPct    float64
	// Refuse fails new connections across the link (established flows
	// keep running).
	Refuse bool
}

// faultMaxRetrans caps the modeled retransmission attempts per frame;
// beyond it the frame arrives after the accumulated backoff anyway
// (the connection would stall, not lose data).
const faultMaxRetrans = 6

type activeFault struct {
	id   int
	rule FaultRule
	src  map[string]bool // nil = any
	dst  map[string]bool
}

func hostSet(hosts []string) map[string]bool {
	if len(hosts) == 0 {
		return nil
	}
	m := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		m[h] = true
	}
	return m
}

func (f *activeFault) matches(src, dst string) bool {
	in := func(set map[string]bool, h string) bool { return set == nil || set[h] }
	if in(f.src, src) && in(f.dst, dst) {
		return true
	}
	if !f.rule.OneWay && in(f.src, dst) && in(f.dst, src) {
		return true
	}
	return false
}

// InjectFault activates a fault rule and returns its id for HealFault.
func (c *Cluster) InjectFault(r FaultRule) int {
	c.nextFaultID++
	id := c.nextFaultID
	c.faults = append(c.faults, &activeFault{
		id:   id,
		rule: r,
		src:  hostSet(r.Src),
		dst:  hostSet(r.Dst),
	})
	c.Trace.Instant("net", "faults", "net.fault_injected", "net", c.Eng.Now(),
		obs.A("id", int64(id)))
	return id
}

// HealFault deactivates a fault rule; frames parked by a partition it
// imposed are re-injected in their original order (subject to any
// other still-active rule).
func (c *Cluster) HealFault(id int) {
	kept := c.faults[:0]
	found := false
	for _, f := range c.faults {
		if f.id == id {
			found = true
			continue
		}
		kept = append(kept, f)
	}
	c.faults = kept
	if !found {
		return
	}
	c.Trace.Instant("net", "faults", "net.fault_healed", "net", c.Eng.Now(),
		obs.A("id", int64(id)))
	c.releaseParked()
}

// HealAllFaults deactivates every fault rule and releases all parked
// frames.
func (c *Cluster) HealAllFaults() {
	if len(c.faults) == 0 {
		return
	}
	c.faults = nil
	c.Trace.Instant("net", "faults", "net.fault_healed", "net", c.Eng.Now(),
		obs.A("id", int64(-1)))
	c.releaseParked()
}

// IsolateHost partitions one host from every other host (both
// directions) — the classic "leader on the wrong side of the switch".
func (c *Cluster) IsolateHost(host string) int {
	return c.InjectFault(FaultRule{Src: []string{host}, Partition: true})
}

// PartitionHosts partitions two host groups from each other.
func (c *Cluster) PartitionHosts(a, b []string) int {
	return c.InjectFault(FaultRule{Src: a, Dst: b, Partition: true})
}

// FaultsActive returns the number of active fault rules.
func (c *Cluster) FaultsActive() int { return len(c.faults) }

// linkPartitioned reports whether an active partition rule blocks
// frames src→dst.
func (c *Cluster) linkPartitioned(src, dst *Node) bool {
	if src == dst || len(c.faults) == 0 {
		return false
	}
	for _, f := range c.faults {
		if f.rule.Partition && f.matches(src.Hostname, dst.Hostname) {
			return true
		}
	}
	return false
}

// faultBlocksConnect reports whether a new connection src→dst cannot
// be established: a partition or refuse window in either direction
// kills the handshake (the SYN or the SYN-ACK is lost).
func (c *Cluster) faultBlocksConnect(src, dst *Node) bool {
	if src == dst || len(c.faults) == 0 {
		return false
	}
	for _, f := range c.faults {
		if !f.rule.Partition && !f.rule.Refuse {
			continue
		}
		if f.matches(src.Hostname, dst.Hostname) || f.matches(dst.Hostname, src.Hostname) {
			return true
		}
		// A one-way rule in the reverse direction still blocks the
		// handshake: the SYN-ACK cannot come back.
		if in := func(set map[string]bool, h string) bool { return set == nil || set[h] }; f.rule.OneWay &&
			in(f.src, dst.Hostname) && in(f.dst, src.Hostname) {
			return true
		}
	}
	return false
}

// faultExtraDelay returns the added one-way delay active rules impose
// on one frame src→dst: extra latency (jittered) plus drop-driven
// retransmission backoff.  The engine RNG keeps it reproducible per
// seed.
func (c *Cluster) faultExtraDelay(src, dst *Node) time.Duration {
	if src == dst || len(c.faults) == 0 {
		return 0
	}
	var extra time.Duration
	rng := c.Eng.Rand()
	for _, f := range c.faults {
		if !f.matches(src.Hostname, dst.Hostname) {
			continue
		}
		if d := f.rule.ExtraLatency; d > 0 {
			if f.rule.JitterPct > 0 {
				d = time.Duration(float64(d) * (1 + f.rule.JitterPct*(2*rng.Float64()-1)))
			}
			extra += d
		}
		if p := f.rule.Drop; p > 0 {
			rto := c.Params.RetransTimeout
			for i := 0; i < faultMaxRetrans && rng.Float64() < p; i++ {
				extra += rto
				if rto < c.Params.RetransTimeout<<faultMaxRetrans {
					rto *= 2
				}
			}
		}
	}
	if extra > 0 {
		c.Trace.Add(dst.Hostname, "net.frames_delayed", c.Eng.Now(), 1)
	}
	return extra
}

// parkFrame holds a frame on a partitioned link.  Parked bytes count
// as in flight, so senders block on their window exactly as they
// would against a wedged link.
func (c *Cluster) parkFrame(ep *TCPEndpoint, src *Node, data []byte, fin bool) {
	if len(ep.parked) == 0 {
		// First parked frame registers the endpoint; the slice keeps
		// release order deterministic (park order), unlike a map.
		c.parkedEps = append(c.parkedEps, ep)
	}
	ep.parked = append(ep.parked, parkedFrame{src: src, data: append([]byte(nil), data...), fin: fin})
	ep.inflight += int64(len(data))
	c.Trace.Add(ep.node.Hostname, "net.frames_parked", c.Eng.Now(), 1)
}

// releaseParked re-runs every parked frame through the normal send
// path in arrival order; frames whose link is still faulted re-park.
func (c *Cluster) releaseParked() {
	eps := c.parkedEps
	c.parkedEps = nil
	for _, ep := range eps {
		frames := ep.parked
		ep.parked = nil
		for _, fr := range frames {
			ep.inflight -= int64(len(fr.data))
			if fr.fin {
				ep.sendFIN(fr.src)
			} else {
				ep.enqueue(fr.src, fr.data)
			}
		}
	}
}

// parkedFrame is one frame held by a partition: payload bytes or the
// FIN marker, in arrival order.
type parkedFrame struct {
	src  *Node
	data []byte
	fin  bool
}
