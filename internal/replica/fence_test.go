package replica

import (
	"testing"
	"time"

	"repro/internal/bin"
	"repro/internal/coordstate"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/sim"
)

// TestRawStaleEpochWritesAreFencedAndCounted speaks the journal wire
// protocol directly (the ops are unexported, so this test lives inside
// the package): a sink machine already on epoch 1 must answer raw
// epoch-0 opJSnap and opJAppend frames with opErr, leave its state
// untouched, and count each rejection in Stats.FencedWrites — the
// counter operators watch to spot a deposed leader still trying to
// write.
func TestRawStaleEpochWritesAreFencedAndCounted(t *testing.T) {
	eng := sim.NewEngine(1)
	c := kernel.NewCluster(eng, model.Default(), 2)
	t.Cleanup(eng.Shutdown)
	sv := Install(c, Config{Factor: 1, Root: "/ckpt/store"})
	if err := sv.StartAll(); err != nil {
		t.Fatal(err)
	}
	sink := coordstate.NewMachine()
	sink.Apply(coordstate.Event{Kind: coordstate.EvRegister, Desc: "a/x[1]"})
	sink.Apply(coordstate.Event{Kind: coordstate.EvTakeover, Leader: "node01", Epoch: 1})
	sv.SetJournalSink(c.Node(1), sink)
	preSeq := sink.Seq()

	// A plausible epoch-0 payload: what a deposed leader that never
	// heard of the takeover would actually ship.
	stale := coordstate.NewMachine()
	stale.Apply(coordstate.Event{Kind: coordstate.EvRegister, Desc: "a/x[1]"})
	stale.Apply(coordstate.Event{Kind: coordstate.EvRegister, Desc: "ghost/y[2]"})

	c.RegisterFunc("m", func(task *kernel.Task, _ []string) {
		task.Compute(time.Millisecond) // let the daemons listen
		defer eng.Stop()
		send := func(frame []byte) byte {
			fd := task.Socket()
			defer task.Close(fd)
			if err := task.Connect(fd, kernel.Addr{Host: "node01", Port: Port}); err != nil {
				t.Errorf("connect: %v", err)
				return 0
			}
			if err := task.SendFrame(fd, frame); err != nil {
				t.Errorf("send: %v", err)
				return 0
			}
			resp, err := task.RecvFrame(fd)
			if err != nil || len(resp) == 0 {
				t.Errorf("recv: %v", err)
				return 0
			}
			return resp[0]
		}

		// Stale snapshot install: must not rewind the newer epoch.
		base, snap := stale.Snapshot()
		var se bin.Encoder
		se.B = append(se.B, opJSnap)
		se.I64(0) // deposed epoch
		se.I64(base)
		se.Bytes(snap)
		if op := send(se.B); op != opErr {
			t.Errorf("stale opJSnap answered %q, want opErr", op)
		}
		if sv.Stats.FencedWrites != 1 {
			t.Errorf("FencedWrites after stale snap = %d, want 1", sv.Stats.FencedWrites)
		}

		// Stale append: must not extend (or rewind) the history.
		entries := stale.EntriesSince(1)
		var je bin.Encoder
		je.B = append(je.B, opJAppend)
		je.I64(0) // deposed epoch
		je.I64(1) // rewind point below the sink's seq
		je.U32(uint32(len(entries)))
		for _, ent := range entries {
			je.I64(ent.Seq)
			je.Bytes(ent.Data)
		}
		if op := send(je.B); op != opErr {
			t.Errorf("stale opJAppend answered %q, want opErr", op)
		}
		if sv.Stats.FencedWrites != 2 {
			t.Errorf("FencedWrites after stale append = %d, want 2", sv.Stats.FencedWrites)
		}

		// The read-only handshake still answers honestly, so the
		// deposed pusher can learn the newer epoch — and it is not a
		// fenced write.
		var we bin.Encoder
		we.B = append(we.B, opJWant)
		we.I64(0)
		if op := send(we.B); op != opAck {
			t.Errorf("stale opJWant answered %q, want opAck (read-only)", op)
		}
		if sv.Stats.FencedWrites != 2 {
			t.Errorf("FencedWrites after handshake = %d, want 2 (reads never fence)", sv.Stats.FencedWrites)
		}
	})
	if _, err := c.Node(0).Kern.Spawn("m", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.Seq() != preSeq || sink.Epoch() != 1 {
		t.Fatalf("sink moved: seq %d -> %d, epoch %d", preSeq, sink.Seq(), sink.Epoch())
	}
	if sink.State().ClientByDesc("ghost/y[2]") != 0 {
		t.Fatal("stale entry applied through the fence")
	}
}
