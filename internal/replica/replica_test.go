package replica_test

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/coordstate"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/mtcp"
	"repro/internal/replica"
	"repro/internal/sim"
	"repro/internal/store"
)

const root = "/ckpt/store"

func testCluster(t *testing.T, nodes int) (*sim.Engine, *kernel.Cluster) {
	return seededCluster(t, 1, nodes)
}

func seededCluster(t *testing.T, seed int64, nodes int) (*sim.Engine, *kernel.Cluster) {
	t.Helper()
	eng := sim.NewEngine(seed)
	c := kernel.NewCluster(eng, model.Default(), nodes)
	t.Cleanup(eng.Shutdown)
	return eng, c
}

func run(t *testing.T, eng *sim.Engine, c *kernel.Cluster, fn func(*kernel.Task)) {
	t.Helper()
	c.RegisterFunc("m", func(task *kernel.Task, _ []string) {
		task.Compute(time.Millisecond) // let the daemons listen
		fn(task)
		eng.Stop()
	})
	if _, err := c.Node(0).Kern.Spawn("m", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// commit writes one generation of a synthetic image into node 0's
// store and returns its manifest path.
func commit(task *kernel.Task, touch float64, salt uint64) string {
	p := task.P
	if p.Mem.Area("[heap]") == nil {
		task.MapLib("/lib/libc.so", 4*model.MB)
		h := p.Mem.MapAnon("[heap]", 32*model.MB, model.ClassData)
		h.Payload = []byte("payload-v1")
		h.Touch(0, int64(len(h.Payload)))
	}
	if touch > 0 {
		p.Mem.Area("[heap]").TouchFraction(touch, salt)
	}
	img := mtcp.Capture(p, 900)
	s := store.Open(p.Node, store.Config{Root: root, Compress: true})
	res := mtcp.WriteImage(task, img, mtcp.WriteOptions{Dir: "/ckpt", Compress: true, Store: s})
	s.InitReplicationWatermark(task, mtcp.ImageBase(img))
	return res.Path
}

func TestRingTargetsSkipSelfAndDownNodes(t *testing.T) {
	_, c := testCluster(t, 4)
	sv := replica.Install(c, replica.Config{Factor: 2, Root: root})
	names := func(ns []*kernel.Node) []string {
		var out []string
		for _, n := range ns {
			out = append(out, n.Hostname)
		}
		return out
	}
	got := names(sv.Targets(c.Node(1)))
	if len(got) != 2 || got[0] != "node02" || got[1] != "node03" {
		t.Errorf("targets of node01 = %v", got)
	}
	c.Node(2).Down = true
	got = names(sv.Targets(c.Node(1)))
	if len(got) != 2 || got[0] != "node03" || got[1] != "node00" {
		t.Errorf("targets of node01 with node02 down = %v", got)
	}
}

func TestFanOutReplicatesAndDedups(t *testing.T) {
	eng, c := testCluster(t, 3)
	sv := replica.Install(c, replica.Config{Factor: 2, Root: root})
	if err := sv.StartAll(); err != nil {
		t.Fatal(err)
	}
	run(t, eng, c, func(task *kernel.Task) {
		p1 := commit(task, 0, 0)
		name, gen, _ := store.NameForManifest(p1)
		sv.Enqueue(c.Node(0), replica.Job{Name: name, Generation: gen, ManifestPath: p1})
		sv.WaitIdle(task)

		if sv.Stats.Generations != 1 || sv.Stats.Pushes != 2 {
			t.Fatalf("stats after gen 1 = %+v", sv.Stats)
		}
		gen1Bytes := sv.Stats.BytesSent
		src := store.Open(c.Node(0), store.Config{Root: root})
		m, err := src.LoadManifest(p1)
		if err != nil {
			t.Fatal(err)
		}
		for _, peer := range []*kernel.Node{c.Node(1), c.Node(2)} {
			ps := store.Open(peer, store.Config{Root: root})
			if _, err := ps.LoadManifest(p1); err != nil {
				t.Errorf("%s missing manifest: %v", peer.Hostname, err)
			}
			if missing := ps.MissingChunks(m.Refs()); len(missing) != 0 {
				t.Errorf("%s missing %d chunks after fan-out", peer.Hostname, len(missing))
			}
		}
		if wm, ok := src.ReplicationWatermark(name); !ok || wm != gen {
			t.Errorf("watermark = %v,%v want %d", wm, ok, gen)
		}

		// A 10%-dirty second generation ships a fraction of the first.
		p2 := commit(task, 0.10, 7)
		_, gen2, _ := store.NameForManifest(p2)
		sv.Enqueue(c.Node(0), replica.Job{Name: name, Generation: gen2, ManifestPath: p2})
		sv.WaitIdle(task)
		incr := sv.Stats.BytesSent - gen1Bytes
		if incr <= 0 || incr >= gen1Bytes/4 {
			t.Errorf("incremental fan-out shipped %d of %d", incr, gen1Bytes)
		}
	})
}

func TestEnsureLocalFetchesOnlyMissing(t *testing.T) {
	eng, c := testCluster(t, 3)
	sv := replica.Install(c, replica.Config{Factor: 1, Root: root})
	if err := sv.StartAll(); err != nil {
		t.Fatal(err)
	}
	run(t, eng, c, func(task *kernel.Task) {
		p1 := commit(task, 0, 0)
		name, gen, _ := store.NameForManifest(p1)
		sv.Enqueue(c.Node(0), replica.Job{Name: name, Generation: gen, ManifestPath: p1})
		sv.WaitIdle(task)

		// node02 holds nothing (factor 1 → only node01): a fetch from
		// node00 must pull the manifest and every chunk, charging time.
		t0 := task.Now()
		var fs replica.FetchStats
		var err error
		done := false
		c.RegisterFunc("fetcher", func(ft *kernel.Task, _ []string) {
			fs, err = sv.EnsureLocal(ft, p1, "node00")
			done = true
		})
		if _, err := c.Node(2).Kern.Spawn("fetcher", nil, nil); err != nil {
			t.Fatal(err)
		}
		for !done {
			task.Compute(10 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("fetch: %v", err)
		}
		if !fs.ManifestFetched || fs.Chunks == 0 || fs.Bytes == 0 {
			t.Errorf("cold fetch = %+v", fs)
		}
		if task.Now().Sub(t0) <= 0 {
			t.Error("fetch charged no time")
		}
		ps := store.Open(c.Node(2), store.Config{Root: root})
		m, err := ps.LoadManifest(p1)
		if err != nil {
			t.Fatalf("fetched manifest unreadable: %v", err)
		}
		if missing := ps.MissingChunks(m.Refs()); len(missing) != 0 {
			t.Fatalf("%d chunks still missing after fetch", len(missing))
		}

		// A second fetch is a no-op: everything is local now.
		done = false
		if _, err := c.Node(2).Kern.Spawn("fetcher", nil, nil); err != nil {
			t.Fatal(err)
		}
		for !done {
			task.Compute(10 * time.Millisecond)
		}
		if err != nil || fs.ManifestFetched || fs.Chunks != 0 {
			t.Errorf("warm fetch = %+v, %v — dedup not applied", fs, err)
		}
	})
}

// fanOutOnce runs one factor-3 fan-out on a fresh cluster and reports
// the outcome facts order-independence is judged on.
func fanOutOnce(t *testing.T, seed int64, fanOut int) (bytesSent int64, pushes int, holders []string) {
	t.Helper()
	eng, c := seededCluster(t, seed, 5)
	sv := replica.Install(c, replica.Config{Factor: 3, Root: root, FanOut: fanOut})
	if err := sv.StartAll(); err != nil {
		t.Fatal(err)
	}
	var holderSet []string
	sv.OnReplicated = func(_ string, _ int64, holder string) {
		holderSet = append(holderSet, holder)
	}
	run(t, eng, c, func(task *kernel.Task) {
		p1 := commit(task, 0, 0)
		name, gen, _ := store.NameForManifest(p1)
		sv.Enqueue(c.Node(0), replica.Job{Name: name, Generation: gen, ManifestPath: p1})
		sv.WaitIdle(task)

		src := store.Open(c.Node(0), store.Config{Root: root})
		m, err := src.LoadManifest(p1)
		if err != nil {
			t.Fatal(err)
		}
		for _, peer := range []*kernel.Node{c.Node(1), c.Node(2), c.Node(3)} {
			ps := store.Open(peer, store.Config{Root: root})
			if missing := ps.MissingChunks(m.Refs()); len(missing) != 0 {
				t.Errorf("%s missing %d chunks", peer.Hostname, len(missing))
			}
		}
		if wm, ok := src.ReplicationWatermark(name); !ok || wm != gen {
			t.Errorf("watermark = %v,%v want %d", wm, ok, gen)
		}
	})
	sort.Strings(holderSet)
	return sv.Stats.BytesSent, sv.Stats.Pushes, holderSet
}

// TestParallelFanOutOrderIndependence pins the concurrent fan-out's
// contract: whatever order the parallel pushers complete in — and
// however wide the pool is, including the width-1 sequential case —
// the outcome is identical: same peers hold complete generations,
// same bytes shipped, same watermark.
func TestParallelFanOutOrderIndependence(t *testing.T) {
	refBytes, refPushes, refHolders := fanOutOnce(t, 1, 0) // default parallel width
	if refPushes != 3 || len(refHolders) != 3 {
		t.Fatalf("fan-out incomplete: pushes=%d holders=%v", refPushes, refHolders)
	}
	for _, tc := range []struct {
		name   string
		seed   int64
		fanOut int
	}{
		{"different schedule", 7, 0},
		{"another schedule", 23, 0},
		{"width 2", 1, 2},
		{"sequential", 1, 1},
	} {
		bytes, pushes, holders := fanOutOnce(t, tc.seed, tc.fanOut)
		if bytes != refBytes || pushes != refPushes || !reflect.DeepEqual(holders, refHolders) {
			t.Errorf("%s: outcome diverged: bytes %d vs %d, pushes %d vs %d, holders %v vs %v",
				tc.name, bytes, refBytes, pushes, refPushes, holders, refHolders)
		}
	}
}

// TestJournalPushAndFencing exercises the coordinator-journal
// transport the daemons carry for coordinator HA: the want/append
// handshake ships only the suffix the sink lacks, and a stale-epoch
// pusher is fenced off.
func TestJournalPushAndFencing(t *testing.T) {
	eng, c := testCluster(t, 3)
	sv := replica.Install(c, replica.Config{Factor: 1, Root: root})
	if err := sv.StartAll(); err != nil {
		t.Fatal(err)
	}
	leader := coordstate.NewMachine()
	standby := coordstate.NewMachine()
	sv.SetJournalSink(c.Node(1), standby)
	run(t, eng, c, func(task *kernel.Task) {
		leader.Apply(coordstate.Event{Kind: coordstate.EvRegister, Desc: "a/x[1]"})
		leader.Apply(coordstate.Event{Kind: coordstate.EvRegister, Desc: "b/y[2]"})
		seq, err := sv.PushJournal(task, "node01", leader)
		if err != nil || seq != 2 {
			t.Fatalf("push: seq=%d err=%v", seq, err)
		}
		if !reflect.DeepEqual(standby.State(), leader.State()) {
			t.Fatal("sink state diverges after push")
		}
		before := sv.Stats.JournalEntries

		// Second push with nothing new ships nothing.
		if _, err := sv.PushJournal(task, "node01", leader); err != nil {
			t.Fatal(err)
		}
		if sv.Stats.JournalEntries != before {
			t.Error("caught-up push re-shipped entries")
		}

		// Only the suffix travels.
		leader.Apply(coordstate.Event{Kind: coordstate.EvRegister, Desc: "c/z[3]"})
		if seq, err := sv.PushJournal(task, "node01", leader); err != nil || seq != 3 {
			t.Fatalf("suffix push: seq=%d err=%v", seq, err)
		}
		if got := sv.Stats.JournalEntries - before; got != 1 {
			t.Errorf("suffix push shipped %d entries, want 1", got)
		}

		// The sink is promoted to epoch 1; the old epoch-0 leader must
		// be fenced off.
		standby.Apply(coordstate.Event{Kind: coordstate.EvTakeover, Leader: "node01", Epoch: 1})
		leader.Apply(coordstate.Event{Kind: coordstate.EvRegister, Desc: "stale"})
		if _, err := sv.PushJournal(task, "node01", leader); !errors.Is(err, replica.ErrDeposed) {
			t.Fatalf("stale-epoch push: err = %v, want ErrDeposed", err)
		}
		if standby.State().ClientByDesc("stale") != 0 {
			t.Fatal("stale entry applied through the fence")
		}
	})
}

// TestJournalFenceAfterDoubleTakeover: standby B holds epoch-0
// entries the intermediate leader A never saw; after A dies too, the
// next leader C (epoch 2) must rewind B past the divergence point —
// the first epoch boundary B missed — not merely to C's newest epoch
// start, or B would keep a divergent prefix under C's suffix.
func TestJournalFenceAfterDoubleTakeover(t *testing.T) {
	eng, c := testCluster(t, 3)
	sv := replica.Install(c, replica.Config{Factor: 1, Root: root})
	if err := sv.StartAll(); err != nil {
		t.Fatal(err)
	}
	reg := func(m *coordstate.Machine, desc string) {
		m.Apply(coordstate.Event{Kind: coordstate.EvRegister, Desc: desc})
	}
	// Shared epoch-0 prefix of 2 entries.
	leader0 := coordstate.NewMachine()
	reg(leader0, "a/x[1]")
	reg(leader0, "b/y[2]")
	// B replicated the prefix, then got 2 more epoch-0 entries that
	// never reached anyone else before leader0 died.
	ahead, err := coordstate.Replay(leader0.EntriesSince(0))
	if err != nil {
		t.Fatal(err)
	}
	reg(ahead, "c/z[3]")
	reg(ahead, "d/w[4]")
	// A took over at epoch 1 (from the shared prefix), appended one
	// entry, then died; C took over from A's journal at epoch 2.
	next, err := coordstate.Replay(leader0.EntriesSince(0))
	if err != nil {
		t.Fatal(err)
	}
	next.Apply(coordstate.Event{Kind: coordstate.EvTakeover, Leader: "node01", Epoch: 1})
	reg(next, "e/v[5]")
	next.Apply(coordstate.Event{Kind: coordstate.EvTakeover, Leader: "node00", Epoch: 2})
	if fence := next.FenceFor(0); fence != 2 {
		t.Fatalf("FenceFor(0) = %d, want 2 (entry before epoch 1's takeover)", fence)
	}

	sv.SetJournalSink(c.Node(1), ahead)
	run(t, eng, c, func(task *kernel.Task) {
		seq, err := sv.PushJournal(task, "node01", next)
		if err != nil {
			t.Fatalf("push: %v", err)
		}
		if seq != next.Seq() {
			t.Fatalf("peer acked seq %d, want %d", seq, next.Seq())
		}
		if !reflect.DeepEqual(ahead.State(), next.State()) {
			t.Fatalf("divergent prefix survived the fence:\npeer %+v\nleader %+v",
				ahead.State(), next.State())
		}
		if ahead.State().ClientByDesc("c/z[3]") != 0 {
			t.Fatal("orphaned epoch-0 entry kept after rewind")
		}
	})
}

// TestFetchChunksStreamsAndShortCircuits pins the pull-stream
// contract: every chunk is delivered exactly once, is locally durable
// at delivery time, and chunks the local store already holds are
// delivered without touching the network.
func TestFetchChunksStreamsAndShortCircuits(t *testing.T) {
	eng, c := testCluster(t, 3)
	sv := replica.Install(c, replica.Config{Factor: 1, Root: root})
	if err := sv.StartAll(); err != nil {
		t.Fatal(err)
	}
	run(t, eng, c, func(task *kernel.Task) {
		p1 := commit(task, 0, 0)
		src := store.Open(c.Node(0), store.Config{Root: root})
		m, err := src.LoadManifest(p1)
		if err != nil {
			t.Fatal(err)
		}
		refs := m.Refs()
		// Pre-seed a few chunks on node02 so the short-circuit path is
		// exercised alongside real fetches.
		local := store.Open(c.Node(2), store.Config{Root: root})
		preseeded := 3
		for _, ref := range refs[:preseeded] {
			ino, _ := c.Node(0).FS.ReadFile(src.ChunkPath(ref.Hash))
			c.Node(2).FS.WriteFile(local.ChunkPath(ref.Hash), ino.Data, ino.LogicalSize)
		}

		delivered := map[string]int{}
		var netBytes int64
		var nChunks int
		var ferr error
		done := false
		c.RegisterFunc("fetcher2", func(ft *kernel.Task, _ []string) {
			netBytes, nChunks, ferr = sv.FetchChunks(ft, "node00", refs, 4, func(ref store.ChunkRef) {
				if !local.HasChunk(ref.Hash) {
					t.Errorf("chunk %s delivered before it was durable", ref.Hash)
				}
				delivered[ref.Hash]++
			})
			done = true
		})
		if _, err := c.Node(2).Kern.Spawn("fetcher2", nil, nil); err != nil {
			t.Fatal(err)
		}
		for !done {
			task.Compute(10 * time.Millisecond)
		}
		if ferr != nil {
			t.Fatalf("fetch: %v", ferr)
		}
		if nChunks != len(refs)-preseeded {
			t.Errorf("network chunks = %d, want %d (preseeded short-circuit)", nChunks, len(refs)-preseeded)
		}
		if netBytes <= 0 {
			t.Error("no bytes accounted for the network fetch")
		}
		if len(delivered) != len(refs) {
			t.Errorf("delivered %d distinct chunks, want %d", len(delivered), len(refs))
		}
		for h, n := range delivered {
			if n != 1 {
				t.Errorf("chunk %s delivered %d times", h, n)
			}
		}
	})
}

// TestJournalSnapshotCatchUp pins the compaction ship path: a standby
// that predates a leader compaction receives the state snapshot plus
// the materialized suffix (bounded catch-up), converges exactly, and
// subsequent pushes go back to suffix-only shipping.
func TestJournalSnapshotCatchUp(t *testing.T) {
	eng, c := testCluster(t, 3)
	sv := replica.Install(c, replica.Config{Factor: 1, Root: root})
	if err := sv.StartAll(); err != nil {
		t.Fatal(err)
	}
	leader := coordstate.NewMachine()
	for i := 0; i < 10; i++ {
		leader.Apply(coordstate.Event{Kind: coordstate.EvRegister, Desc: fmt.Sprintf("h/p[%d]", i)})
	}
	if err := leader.Compact(); err != nil {
		t.Fatal(err)
	}
	leader.Apply(coordstate.Event{Kind: coordstate.EvRegister, Desc: "post/compaction[1]"})

	standby := coordstate.NewMachine()
	sv.SetJournalSink(c.Node(1), standby)
	run(t, eng, c, func(task *kernel.Task) {
		seq, err := sv.PushJournal(task, "node01", leader)
		if err != nil {
			t.Fatalf("push: %v", err)
		}
		if seq != leader.Seq() {
			t.Fatalf("acked seq = %d, want %d", seq, leader.Seq())
		}
		if sv.Stats.JournalSnapshots != 1 {
			t.Fatalf("snapshots shipped = %d, want 1", sv.Stats.JournalSnapshots)
		}
		if !reflect.DeepEqual(standby.State(), leader.State()) {
			t.Fatal("snapshot catch-up diverges")
		}
		if standby.Base() != leader.Base() {
			t.Fatalf("standby base = %d, want %d", standby.Base(), leader.Base())
		}

		// Caught-up peers keep getting plain suffixes, never snapshots.
		leader.Apply(coordstate.Event{Kind: coordstate.EvRegister, Desc: "tail/x[2]"})
		if _, err := sv.PushJournal(task, "node01", leader); err != nil {
			t.Fatal(err)
		}
		if sv.Stats.JournalSnapshots != 1 {
			t.Errorf("caught-up push re-shipped a snapshot (%d)", sv.Stats.JournalSnapshots)
		}
		if !reflect.DeepEqual(standby.State(), leader.State()) {
			t.Fatal("suffix push after snapshot diverges")
		}
	})
}
