package replica_test

import (
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/mtcp"
	"repro/internal/replica"
	"repro/internal/sim"
	"repro/internal/store"
)

const root = "/ckpt/store"

func testCluster(t *testing.T, nodes int) (*sim.Engine, *kernel.Cluster) {
	t.Helper()
	eng := sim.NewEngine(1)
	c := kernel.NewCluster(eng, model.Default(), nodes)
	t.Cleanup(eng.Shutdown)
	return eng, c
}

func run(t *testing.T, eng *sim.Engine, c *kernel.Cluster, fn func(*kernel.Task)) {
	t.Helper()
	c.RegisterFunc("m", func(task *kernel.Task, _ []string) {
		task.Compute(time.Millisecond) // let the daemons listen
		fn(task)
		eng.Stop()
	})
	if _, err := c.Node(0).Kern.Spawn("m", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// commit writes one generation of a synthetic image into node 0's
// store and returns its manifest path.
func commit(task *kernel.Task, touch float64, salt uint64) string {
	p := task.P
	if p.Mem.Area("[heap]") == nil {
		task.MapLib("/lib/libc.so", 4*model.MB)
		h := p.Mem.MapAnon("[heap]", 32*model.MB, model.ClassData)
		h.Payload = []byte("payload-v1")
		h.Touch(0, int64(len(h.Payload)))
	}
	if touch > 0 {
		p.Mem.Area("[heap]").TouchFraction(touch, salt)
	}
	img := mtcp.Capture(p, 900)
	s := store.Open(p.Node, store.Config{Root: root, Compress: true})
	res := mtcp.WriteImage(task, img, mtcp.WriteOptions{Dir: "/ckpt", Compress: true, Store: s})
	s.InitReplicationWatermark(task, mtcp.ImageBase(img))
	return res.Path
}

func TestRingTargetsSkipSelfAndDownNodes(t *testing.T) {
	_, c := testCluster(t, 4)
	sv := replica.Install(c, replica.Config{Factor: 2, Root: root})
	names := func(ns []*kernel.Node) []string {
		var out []string
		for _, n := range ns {
			out = append(out, n.Hostname)
		}
		return out
	}
	got := names(sv.Targets(c.Node(1)))
	if len(got) != 2 || got[0] != "node02" || got[1] != "node03" {
		t.Errorf("targets of node01 = %v", got)
	}
	c.Node(2).Down = true
	got = names(sv.Targets(c.Node(1)))
	if len(got) != 2 || got[0] != "node03" || got[1] != "node00" {
		t.Errorf("targets of node01 with node02 down = %v", got)
	}
}

func TestFanOutReplicatesAndDedups(t *testing.T) {
	eng, c := testCluster(t, 3)
	sv := replica.Install(c, replica.Config{Factor: 2, Root: root})
	if err := sv.StartAll(); err != nil {
		t.Fatal(err)
	}
	run(t, eng, c, func(task *kernel.Task) {
		p1 := commit(task, 0, 0)
		name, gen, _ := store.NameForManifest(p1)
		sv.Enqueue(c.Node(0), replica.Job{Name: name, Generation: gen, ManifestPath: p1})
		sv.WaitIdle(task)

		if sv.Stats.Generations != 1 || sv.Stats.Pushes != 2 {
			t.Fatalf("stats after gen 1 = %+v", sv.Stats)
		}
		gen1Bytes := sv.Stats.BytesSent
		src := store.Open(c.Node(0), store.Config{Root: root})
		m, err := src.LoadManifest(p1)
		if err != nil {
			t.Fatal(err)
		}
		for _, peer := range []*kernel.Node{c.Node(1), c.Node(2)} {
			ps := store.Open(peer, store.Config{Root: root})
			if _, err := ps.LoadManifest(p1); err != nil {
				t.Errorf("%s missing manifest: %v", peer.Hostname, err)
			}
			if missing := ps.MissingChunks(m.Refs()); len(missing) != 0 {
				t.Errorf("%s missing %d chunks after fan-out", peer.Hostname, len(missing))
			}
		}
		if wm, ok := src.ReplicationWatermark(name); !ok || wm != gen {
			t.Errorf("watermark = %v,%v want %d", wm, ok, gen)
		}

		// A 10%-dirty second generation ships a fraction of the first.
		p2 := commit(task, 0.10, 7)
		_, gen2, _ := store.NameForManifest(p2)
		sv.Enqueue(c.Node(0), replica.Job{Name: name, Generation: gen2, ManifestPath: p2})
		sv.WaitIdle(task)
		incr := sv.Stats.BytesSent - gen1Bytes
		if incr <= 0 || incr >= gen1Bytes/4 {
			t.Errorf("incremental fan-out shipped %d of %d", incr, gen1Bytes)
		}
	})
}

func TestEnsureLocalFetchesOnlyMissing(t *testing.T) {
	eng, c := testCluster(t, 3)
	sv := replica.Install(c, replica.Config{Factor: 1, Root: root})
	if err := sv.StartAll(); err != nil {
		t.Fatal(err)
	}
	run(t, eng, c, func(task *kernel.Task) {
		p1 := commit(task, 0, 0)
		name, gen, _ := store.NameForManifest(p1)
		sv.Enqueue(c.Node(0), replica.Job{Name: name, Generation: gen, ManifestPath: p1})
		sv.WaitIdle(task)

		// node02 holds nothing (factor 1 → only node01): a fetch from
		// node00 must pull the manifest and every chunk, charging time.
		t0 := task.Now()
		var fs replica.FetchStats
		var err error
		done := false
		c.RegisterFunc("fetcher", func(ft *kernel.Task, _ []string) {
			fs, err = sv.EnsureLocal(ft, p1, "node00")
			done = true
		})
		if _, err := c.Node(2).Kern.Spawn("fetcher", nil, nil); err != nil {
			t.Fatal(err)
		}
		for !done {
			task.Compute(10 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("fetch: %v", err)
		}
		if !fs.ManifestFetched || fs.Chunks == 0 || fs.Bytes == 0 {
			t.Errorf("cold fetch = %+v", fs)
		}
		if task.Now().Sub(t0) <= 0 {
			t.Error("fetch charged no time")
		}
		ps := store.Open(c.Node(2), store.Config{Root: root})
		m, err := ps.LoadManifest(p1)
		if err != nil {
			t.Fatalf("fetched manifest unreadable: %v", err)
		}
		if missing := ps.MissingChunks(m.Refs()); len(missing) != 0 {
			t.Fatalf("%d chunks still missing after fetch", len(missing))
		}

		// A second fetch is a no-op: everything is local now.
		done = false
		if _, err := c.Node(2).Kern.Spawn("fetcher", nil, nil); err != nil {
			t.Fatal(err)
		}
		for !done {
			task.Compute(10 * time.Millisecond)
		}
		if err != nil || fs.ManifestFetched || fs.Chunks != 0 {
			t.Errorf("warm fetch = %+v, %v — dedup not applied", fs, err)
		}
	})
}
