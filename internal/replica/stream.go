package replica

import (
	"time"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
)

// Eager streaming: replication fan-out overlapping the checkpoint
// write.  The checkpoint writer opens a Stream before it starts
// committing chunks; per-peer shipper tasks — running in the source
// node's replica daemon, so they outlive the checkpointed process —
// consume chunks as they land and push them with the same want/missing
// handshake post-commit replication uses.  The manifest still travels
// only at commit, so a peer holding eagerly streamed chunks of an
// uncommitted generation simply holds unreferenced objects: its own
// mark-and-sweep may reclaim them at will, and the commit-time verify
// pass re-ships any such hole.  GC watermark semantics are unchanged —
// the source's watermark is initialized at commit (before the
// coordinator's post-round collection can run) and advances only after
// the full fan-out verifies.
//
// Stream implements the checkpoint layer's ChunkStream interface
// structurally; this package never imports it.

// streamBatch bounds how many freshly landed chunks one want/missing
// round trip covers.
const streamBatch = 32

// Stream is one checkpoint generation being replicated while it is
// still being written.
type Stream struct {
	sv   *Service
	src  *kernel.Node
	name string
	gen  int64

	refs         []store.ChunkRef // chunks handed over, arrival order
	committed    bool
	aborted      bool
	manifestPath string
	// overlap is the pre-commit shipped total of the farthest-ahead
	// peer (a max, not a sum: with factor >= 2 every peer receives the
	// same chunks, and "how much of the image was replicated before
	// commit" must never exceed the image).
	overlap int64
	// writer is the process feeding the stream: the checkpointed
	// process that opened it, re-pointed at the forked writer child by
	// its first Chunk call.  A dead writer with no commit means the
	// stream can never complete and is aborted.
	writer *kernel.Process

	w       *sim.WaitQueue
	targets int
	pending int // shipper tasks still running
	okPeers int
}

// NewStream opens an eager-replication stream for one upcoming
// generation of name on src, fed by writer (the checkpointed process;
// a forked writer child re-points the stream at itself with its first
// chunk).  It returns nil when streaming cannot run (no live daemon on
// the source, or no placement targets) — callers fall back to plain
// post-commit Enqueue.
func (sv *Service) NewStream(src *kernel.Node, writer *kernel.Process, name string, gen int64) *Stream {
	daemon := sv.daemons[src]
	if daemon == nil || daemon.Dead || daemon.Zombie || src.Down {
		return nil
	}
	targets := sv.Targets(src)
	if len(targets) == 0 {
		return nil
	}
	s := &Stream{
		sv:      sv,
		src:     src,
		name:    name,
		gen:     gen,
		writer:  writer,
		w:       sim.NewWaitQueue(sv.C.Eng, src.Hostname+".stream"),
		targets: len(targets),
		pending: len(targets),
	}
	sv.streams[src] = append(sv.streams[src], s)
	for _, peer := range targets {
		peer := peer
		daemon.SpawnTask("repl-stream", true, func(st *kernel.Task) {
			shipStart := st.Now()
			ok := s.shipTo(st, peer)
			var okVal int64
			if ok {
				okVal = 1
			}
			st.Trace().Span(st.Host(), "replicad stream→"+peer.Hostname,
				"repl.stream", "repl", shipStart, st.Now(),
				obs.A("gen", s.gen), obs.A("ok", okVal), obs.A("overlap_bytes", s.overlap))
			s.finishPeer(st, peer, ok)
		})
	}
	return s
}

// Chunk hands one durable chunk to the stream (ChunkStream).
func (s *Stream) Chunk(t *kernel.Task, ref store.ChunkRef) {
	if s.aborted {
		return
	}
	s.writer = t.P
	s.refs = append(s.refs, ref)
	s.w.WakeAll()
}

// Commit reports the written manifest and returns the stored bytes
// the farthest-ahead peer had already received before this instant
// (ChunkStream).  The source's replication watermark is initialized
// here so the coordinator's post-round GC can never prune the
// generation while its fan-out completes.
func (s *Stream) Commit(t *kernel.Task, manifestPath string) int64 {
	if s.aborted {
		return 0
	}
	s.writer = t.P
	store.Open(s.src, store.Config{Root: s.sv.Cfg.Root}).InitReplicationWatermark(t, s.name)
	s.manifestPath = manifestPath
	s.committed = true
	s.w.WakeAll()
	return s.overlap
}

// Abort discards the stream without committing (ChunkStream).
func (s *Stream) Abort() {
	s.aborted = true
	s.w.WakeAll()
}

// stale reports that the stream can never commit: its writer process
// died (or its node did) before the manifest landed.
func (s *Stream) stale() bool {
	if s.committed || s.aborted {
		return false
	}
	if s.src.Down {
		return true
	}
	return s.writer != nil && (s.writer.Dead || s.writer.Zombie)
}

// shipTo feeds one peer: chunks in want/missing batches as they land,
// then the manifest and the verify pass at commit.
func (s *Stream) shipTo(t *kernel.Task, peer *kernel.Node) bool {
	sv := s.sv
	st := store.Open(s.src, store.Config{Root: sv.Cfg.Root})
	fd := t.Socket()
	defer t.Close(fd)
	if err := t.Connect(fd, kernel.Addr{Host: peer.Hostname, Port: Port}); err != nil {
		return false
	}
	cursor := 0
	var preBytes int64 // this peer's pre-commit shipped total
	for {
		for cursor == len(s.refs) && !s.committed && !s.aborted {
			if s.stale() {
				s.Abort()
				return false
			}
			s.w.WaitTimeout(t.T, 100*time.Millisecond)
		}
		if s.aborted {
			return false
		}
		if cursor < len(s.refs) {
			hi := len(s.refs)
			if hi > cursor+streamBatch {
				hi = cursor + streamBatch
			}
			batch := s.refs[cursor:hi]
			cursor = hi
			preCommit := !s.committed
			missing, ok := sv.wantMissing(t, fd, batch)
			if !ok {
				return false
			}
			if !sv.shipChunks(t, st, fd, missing, Job{}) {
				return false
			}
			if preCommit {
				for _, r := range missing {
					preBytes += r.StoredBytes
				}
				if preBytes > s.overlap {
					s.overlap = preBytes
				}
			}
			continue
		}
		break // committed and fully drained
	}
	if !sv.shipManifest(t, fd, s.manifestPath) {
		return false
	}
	// The verify pass reports holes as indices into the manifest's
	// chunk order, not the stream's arrival order.
	m, err := st.LoadManifest(s.manifestPath)
	if err != nil {
		return false
	}
	if !sv.verifyPush(t, st, fd, s.manifestPath, m.Refs(), Job{}) {
		return false
	}
	sv.Stats.Pushes++
	return true
}

// finishPeer retires one shipper; the last one resolves the stream.
func (s *Stream) finishPeer(t *kernel.Task, peer *kernel.Node, ok bool) {
	sv := s.sv
	if ok {
		s.okPeers++
		if sv.OnReplicated != nil {
			sv.OnReplicated(s.name, s.gen, peer.Hostname)
		}
	}
	s.pending--
	if s.pending > 0 {
		return
	}
	// Last shipper out: resolve the stream.
	ss := sv.streams[s.src]
	for i, other := range ss {
		if other == s {
			sv.streams[s.src] = append(ss[:i], ss[i+1:]...)
			break
		}
	}
	if len(sv.streams[s.src]) == 0 {
		delete(sv.streams, s.src)
	}
	switch {
	case !s.committed || s.aborted:
		// Never committed: nothing to replicate; the peers hold (at
		// most) unreferenced chunks their GC is free to sweep.
	case s.okPeers == s.targets:
		st := store.Open(s.src, store.Config{Root: sv.Cfg.Root})
		st.SetReplicationWatermark(t, s.name, s.gen)
		sv.Stats.Generations++
		if sv.OnWatermark != nil {
			sv.OnWatermark(s.name, s.gen, s.src.Hostname)
		}
	default:
		// Partial fan-out (a peer died or raced its GC out of
		// retries): fall back to the queued path, which re-picks live
		// targets and ships only what they still lack.
		sv.Enqueue(s.src, Job{Name: s.name, Generation: s.gen, ManifestPath: s.manifestPath})
	}
	sv.idleW.WakeAll()
}
