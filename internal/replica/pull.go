package replica

import (
	"fmt"

	"repro/internal/bin"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
)

// PullStream is the lazy-restore fetch plane: a priority pull of a
// chunk set striped across every live holder.  One puller task per
// holder drains a shared hottest-first queue over its own connection,
// so aggregate fetch bandwidth scales with the holder count (each
// holder's daemon serializes its sends at the NIC rate).  Demand
// faults preempt the queue: Demand promotes a chunk to the front and
// blocks the caller until it is locally durable.  A holder that dies
// mid-fetch has its in-flight chunk requeued at the front and the
// survivors keep draining — only when every holder is gone does the
// stream fail with a HolderLostError.
type PullStream struct {
	sv    *Service
	local *store.Store
	w     *sim.WaitQueue

	holders []string // live holders, one puller each
	pullers int      // live puller tasks
	tried   []string // holders dropped after an error

	queue    []store.ChunkRef // pending, hottest-first; front is next
	needed   map[string]bool  // hash → part of this stream
	done     map[string]bool  // hash → locally durable
	demanded map[string]bool  // hash → a fault is (or was) waiting on it

	remaining int
	aborted   bool
	err       error
	deliver   func(store.ChunkRef)

	bytes, demandBytes, prefetchBytes int64
	chunks, demandChunks              int
}

// NewPullStream starts pulling refs (already ordered hottest-first)
// from holders into the calling node's store.  Chunks already local
// are delivered immediately without touching the network.  deliver
// (optional) runs as each chunk becomes locally durable, on whichever
// task landed it.
func NewPullStream(t *kernel.Task, sv *Service, holders []string, refs []store.ChunkRef, deliver func(store.ChunkRef)) *PullStream {
	ps := &PullStream{
		sv:       sv,
		local:    store.Open(t.P.Node, store.Config{Root: sv.Cfg.Root}),
		w:        sim.NewWaitQueue(t.P.Node.Cluster.Eng, "lazy.pull"),
		needed:   make(map[string]bool, len(refs)),
		done:     make(map[string]bool, len(refs)),
		demanded: map[string]bool{},
		deliver:  deliver,
	}
	for _, ref := range refs {
		if ps.needed[ref.Hash] {
			continue // duplicate hash: one pull serves every coordinate
		}
		ps.needed[ref.Hash] = true
		if ps.local.HasChunk(ref.Hash) {
			ps.done[ref.Hash] = true
			if deliver != nil {
				deliver(ref)
			}
			continue
		}
		ps.queue = append(ps.queue, ref)
		ps.remaining++
	}
	if ps.remaining == 0 {
		return ps
	}
	for _, h := range holders {
		if n := t.P.Node.Cluster.LookupHost(h); n == nil || n.Down || h == t.P.Node.Hostname {
			continue
		}
		ps.holders = append(ps.holders, h)
	}
	if len(ps.holders) == 0 {
		ps.err = &HolderLostError{Hosts: append([]string(nil), holders...)}
		return ps
	}
	for _, h := range ps.holders {
		h := h
		ps.pullers++
		t.P.SpawnTask("lazy-pull", true, func(pt *kernel.Task) { ps.pull(pt, h) })
	}
	return ps
}

// pull is one holder's puller: a single connection draining the shared
// queue until the stream finishes or the holder fails.
func (ps *PullStream) pull(t *kernel.Task, holder string) {
	start := t.Now()
	var myBytes int64
	myChunks := 0
	defer func() {
		ps.pullers--
		if ps.pullers == 0 && ps.remaining > 0 && ps.err == nil && !ps.aborted {
			ps.err = &HolderLostError{Hosts: append([]string(nil), ps.tried...)}
		}
		t.Trace().Span(t.Host(), "lazy-pull "+holder, "lazy.pull", "repl", start, t.Now(),
			obs.A("bytes", myBytes), obs.A("chunks", int64(myChunks)))
		ps.w.WakeAll()
	}()

	cfd := t.Socket()
	if of, err := t.P.FD(cfd); err == nil {
		of.Protected = true
	}
	defer t.Close(cfd)
	if err := t.Connect(cfd, kernel.Addr{Host: holder, Port: Port}); err != nil {
		ps.dropHolder(holder)
		return
	}
	for {
		if ps.aborted || ps.err != nil || ps.remaining == 0 {
			return
		}
		if len(ps.queue) == 0 {
			ps.w.Wait(t.T)
			continue
		}
		ref := ps.queue[0]
		ps.queue = ps.queue[1:]
		if err := ps.fetchOne(t, cfd, holder, ref); err != nil {
			// Requeue at the front (demand order preserved) and fall
			// back to the surviving holders.
			ps.queue = append([]store.ChunkRef{ref}, ps.queue...)
			ps.dropHolder(holder)
			return
		}
		ps.done[ref.Hash] = true
		ps.remaining--
		ps.bytes += ref.StoredBytes
		ps.chunks++
		myBytes += ref.StoredBytes
		myChunks++
		if ps.demanded[ref.Hash] {
			ps.demandBytes += ref.StoredBytes
			ps.demandChunks++
		} else {
			ps.prefetchBytes += ref.StoredBytes
		}
		if ps.deliver != nil {
			ps.deliver(ref)
		}
		ps.w.WakeAll()
	}
}

// fetchOne pulls one chunk over the open connection into the local
// store.
func (ps *PullStream) fetchOne(t *kernel.Task, cfd int, holder string, ref store.ChunkRef) error {
	var e bin.Encoder
	e.B = append(e.B, opGetChunk)
	e.Str(ref.Hash)
	e.Str(ref.Sum)
	if err := t.SendFrame(cfd, e.B); err != nil {
		return err
	}
	resp, err := t.RecvFrame(cfd)
	if err != nil {
		return err
	}
	if len(resp) == 0 || resp[0] != opAck {
		return fmt.Errorf("replica: %s lacks chunk %s", holder, ref.Hash)
	}
	d := &bin.Decoder{B: resp[1:]}
	if _, err := ps.local.PutReplicaChunk(t, ref, d.Bytes()); err != nil {
		return fmt.Errorf("replica: pull %s from %s: %w", ref.Hash, holder, err)
	}
	return nil
}

// dropHolder removes a failed holder from the stripe set.
func (ps *PullStream) dropHolder(h string) {
	ps.tried = append(ps.tried, h)
	for i, x := range ps.holders {
		if x == h {
			ps.holders = append(ps.holders[:i], ps.holders[i+1:]...)
			break
		}
	}
}

// Demand is the fault path: it promotes the chunk to the front of the
// queue (preempting the prefetch order) and blocks until it is locally
// durable.  Chunks already durable return immediately.
func (ps *PullStream) Demand(t *kernel.Task, ref store.ChunkRef) error {
	if !ps.needed[ref.Hash] {
		return fmt.Errorf("replica: chunk %s not part of this pull stream", ref.Hash)
	}
	if ps.done[ref.Hash] {
		return nil
	}
	ps.demanded[ref.Hash] = true
	for i := range ps.queue {
		if ps.queue[i].Hash == ref.Hash {
			if i > 0 {
				r := ps.queue[i]
				copy(ps.queue[1:i+1], ps.queue[:i])
				ps.queue[0] = r
			}
			break
		}
	}
	ps.w.WakeAll()
	for !ps.done[ref.Hash] {
		if ps.err != nil {
			return ps.err
		}
		if ps.aborted {
			return fmt.Errorf("replica: pull stream aborted")
		}
		ps.w.Wait(t.T)
	}
	return nil
}

// Wait blocks until every chunk is locally durable (or the stream
// failed) and returns the stream error, if any.
func (ps *PullStream) Wait(t *kernel.Task) error {
	for ps.remaining > 0 && ps.err == nil && !ps.aborted {
		ps.w.Wait(t.T)
	}
	return ps.err
}

// Abort stops the stream: pullers exit after their in-flight chunk
// (which stays durable) and blocked Demand callers unblock with an
// error.  Used when the restored process dies mid-drain.
func (ps *PullStream) Abort() {
	if ps.aborted {
		return
	}
	ps.aborted = true
	ps.w.WakeAll()
}

// Done reports whether every chunk is locally durable.
func (ps *PullStream) Done() bool { return ps.remaining == 0 }

// Holders returns the live stripe width.
func (ps *PullStream) Holders() int { return len(ps.holders) }

// Bytes returns total stored bytes fetched over the network.
func (ps *PullStream) Bytes() int64 { return ps.bytes }

// Chunks returns total chunks fetched over the network.
func (ps *PullStream) Chunks() int { return ps.chunks }

// DemandBytes returns the fetched bytes a fault was waiting on.
func (ps *PullStream) DemandBytes() int64 { return ps.demandBytes }

// DemandChunks counts the chunks a fault was waiting on.
func (ps *PullStream) DemandChunks() int { return ps.demandChunks }

// PrefetchBytes returns the fetched bytes no fault waited on.
func (ps *PullStream) PrefetchBytes() int64 { return ps.prefetchBytes }
