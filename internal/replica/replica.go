// Package replica is the replicated checkpoint storage service: a
// per-node storage daemon (dmtcp_replicad, a registered kernel program
// like sshd) that serves chunk/manifest get-put over the simulated
// network, plus an asynchronous replicator that copies every committed
// checkpoint generation to a fixed number of peer nodes.
//
// The design follows stdchk (Al Kiswany et al.): checkpoint data is
// too valuable to live only on the node that wrote it — the node whose
// failure the checkpoint exists to survive — so cluster peers are
// aggregated into a dedicated, replicated storage layer.  Replication
// is dedup-aware end to end: the pusher first asks the peer which
// chunk fingerprints it lacks, and only those chunks travel, so a
// 10%-dirty generation ships ~10% of its image regardless of the
// replication factor's fan-out.
//
// Protocol (length-prefixed frames over one TCP connection):
//
//	want     C→S  manifest's chunk hashes     → indices the peer lacks
//	manifest C→S  one serialized manifest (push; sent before its chunks
//	              so they are referenced — and GC-safe — on arrival)
//	chunk    C→S  one chunk object (push)
//	done     C→S  end of push                 → peer verifies the whole
//	              generation and reports any chunk it still lacks
//	getman   C→S  manifest path (fetch)       → manifest bytes
//	getchunk C→S  chunk hash (fetch)          → chunk bytes
//
// Bulk time is charged the way the rest of the simulation charges it:
// real payload bytes ride the frames, while modeled (stored) bytes are
// charged explicitly — the sender charges the network transfer, the
// serving side charges its disk read, the receiving side its disk
// write.
package replica

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bin"
	"repro/internal/coordstate"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
)

// Port is where every node's replica daemon listens.
const Port = 7791

// DefaultFanOut bounds the concurrent per-generation pushers when
// Config.FanOut is zero.
const DefaultFanOut = 4

// Protocol message types (first byte of each frame).
const (
	opWant     = 'w' // push: which of these chunk hashes do you lack?
	opChunk    = 'c' // push: one chunk object
	opManifest = 'm' // push: one manifest
	opDone     = 'd' // push: end of generation → ack
	opGetMan   = 'g' // fetch: manifest by path
	opGetChunk = 'h' // fetch: chunk by hash
	opJWant    = 'W' // journal: which seq do you have? (epoch-fenced)
	opJAppend  = 'J' // journal: entries batch → ack with new seq
	opJSnap    = 'S' // journal: state snapshot (compaction catch-up)
	opAck      = 'k'
	opErr      = 'e'
)

// HolderLostError reports that a restore's serving holder became
// unreachable mid-fetch.  The restart layer raises it only after every
// fallback holder it knew of failed too; Hosts lists them in the order
// tried.
type HolderLostError struct {
	Hosts []string
	Err   error
}

func (e *HolderLostError) Error() string {
	return fmt.Sprintf("replica: fetch holders %v lost mid-restore: %v", e.Hosts, e.Err)
}

func (e *HolderLostError) Unwrap() error { return e.Err }

// Config selects replication behavior.
type Config struct {
	// Factor is the number of peer nodes every committed generation is
	// copied to.
	Factor int
	// Root is the store root, the same path on every node.
	Root string
	// FanOut bounds the concurrent pushers a generation's fan-out may
	// use (0 means DefaultFanOut).  Peers are pushed to in parallel,
	// so the unreplicated window shrinks from sum-of-pushes to
	// roughly the slowest single push.
	FanOut int
}

// Job is one committed generation awaiting replication.
type Job struct {
	Name         string
	Generation   int64
	ManifestPath string

	// Targets, when non-nil, overrides ring placement for this job —
	// a repair drive names exactly the under-replicated peers to fill.
	Targets []*kernel.Node
	// Repair marks a background re-replication job: its chunk traffic
	// is paced by Params.RepairQoS so restoring redundancy cannot
	// starve foreground checkpoint pushes of network bandwidth.
	Repair bool
	// Cancel, when set, is polled between pushes; returning true
	// abandons the rest of the job cleanly (the generation aged out or
	// was superseded mid-repair).
	Cancel func() bool
	// OnDone, when set, is called once when the job finishes;
	// restored reports whether every target ended holding a full copy.
	OnDone func(restored bool)
}

// Stats aggregates replication traffic for the whole service.
type Stats struct {
	// Generations counts jobs whose full fan-out completed.
	Generations int
	// Pushes counts (job, peer) copies that completed.
	Pushes int
	// ChunksSent and BytesSent count the deduped chunk traffic that
	// actually traveled (stored bytes).
	ChunksSent int
	BytesSent  int64
	// ManifestBytes counts manifest bytes shipped.
	ManifestBytes int64
	// FetchChunks and FetchBytes count recovery/migration fetch
	// traffic served to restarting nodes.
	FetchChunks int
	FetchBytes  int64
	// JournalEntries and JournalBytes count coordinator journal
	// records shipped to standby coordinators; JournalSnapshots counts
	// compaction snapshots shipped wholesale to peers that predate a
	// compaction.
	JournalEntries   int
	JournalBytes     int64
	JournalSnapshots int
	// FencedWrites counts journal write ops (snapshot installs and
	// appends) rejected because the pusher's epoch was stale — a
	// deposed leader trying to extend a superseded history.
	FencedWrites int
	// RepairJobs counts re-replication (repair) jobs that restored
	// full redundancy; RepairPushes the (generation, peer) copies they
	// completed; RepairCancels the jobs abandoned via Job.Cancel.
	RepairJobs    int
	RepairPushes  int
	RepairCancels int
	// ScrubChunks counts chunk objects verified by the background
	// scrubber; ScrubCorrupt the verification failures it quarantined;
	// CorruptServed the serve-side rejections where a fetcher's
	// expected checksum exposed a corrupt local copy.
	ScrubChunks   int
	ScrubCorrupt  int
	CorruptServed int
}

// FetchStats reports one EnsureLocal call.
type FetchStats struct {
	ManifestFetched bool
	Chunks          int
	Bytes           int64
}

type nodeQueue struct {
	jobs []Job
	busy bool
	w    *sim.WaitQueue
}

// Service is the cluster-wide handle to the replica subsystem.
// Like the rest of the harness-side state, its fields are shared under
// the engine's cooperative scheduling.
type Service struct {
	C   *kernel.Cluster
	Cfg Config

	// Stats accumulates replication traffic.
	Stats Stats

	// OnReplicated, when set, is called after one (generation, peer)
	// copy completes — the DMTCP coordinator uses it to maintain its
	// placement map.
	OnReplicated func(name string, gen int64, holder string)
	// OnWatermark, when set, is called after a generation's full
	// fan-out completes and the source store's watermark advances.
	OnWatermark func(name string, gen int64, src string)
	// OnCorrupt, when set, is called from a scrubber task after it
	// quarantines a corrupt chunk on host — the DMTCP layer uses it to
	// kick the repair drive so redundancy is restored from a clean
	// holder.
	OnCorrupt func(t *kernel.Task, host string, ref store.ChunkRef)

	queues map[*kernel.Node]*nodeQueue
	// inflight counts committed-but-not-yet-enqueued generations per
	// node (forked checkpoint writers enqueue from the background
	// child); WaitIdle must not return before they land in a queue.
	inflight map[*kernel.Node]int
	idleW    *sim.WaitQueue

	// daemons maps each node to its live replica daemon process, where
	// eager-streaming shipper tasks run (they must outlive the
	// checkpointed process that feeds them).
	daemons map[*kernel.Node]*kernel.Process
	// streams are the in-progress eager-replication streams per source
	// node; WaitIdle counts them like queued jobs.
	streams map[*kernel.Node][]*Stream

	// sinks maps a node to the standby coordinator state machine its
	// daemon feeds with journal records pushed by the active
	// coordinator.
	sinks map[*kernel.Node]*coordstate.Machine
	// sinkSeen records the virtual time each sink last accepted a
	// journal op from the leader; the standby silence watchdog reads
	// it to detect a leader that is alive but partitioned away.
	sinkSeen map[*kernel.Node]sim.Time
}

// Install registers the dmtcp_replicad program and returns the
// service handle.  Call StartAll (or spawn dmtcp_replicad per node)
// before replicating.
func Install(c *kernel.Cluster, cfg Config) *Service {
	sv := &Service{
		C:        c,
		Cfg:      cfg,
		queues:   make(map[*kernel.Node]*nodeQueue),
		inflight: make(map[*kernel.Node]int),
		idleW:    sim.NewWaitQueue(c.Eng, "replica.idle"),
		daemons:  make(map[*kernel.Node]*kernel.Process),
		streams:  make(map[*kernel.Node][]*Stream),
		sinks:    make(map[*kernel.Node]*coordstate.Machine),
		sinkSeen: make(map[*kernel.Node]sim.Time),
	}
	c.RegisterFunc("dmtcp_replicad", sv.daemonMain)
	return sv
}

// StartAll spawns the replica daemon on every live node.
func (sv *Service) StartAll() error {
	for _, n := range sv.C.Nodes() {
		if n.Down {
			continue
		}
		if _, err := n.Kern.Spawn("dmtcp_replicad", nil, nil); err != nil {
			return err
		}
	}
	return nil
}

func (sv *Service) queue(n *kernel.Node) *nodeQueue {
	q := sv.queues[n]
	if q == nil {
		q = &nodeQueue{w: sim.NewWaitQueue(sv.C.Eng, n.Hostname+".replq")}
		sv.queues[n] = q
	}
	return q
}

// Enqueue schedules asynchronous replication of a committed
// generation from node n.
func (sv *Service) Enqueue(n *kernel.Node, job Job) {
	q := sv.queue(n)
	q.jobs = append(q.jobs, job)
	q.w.WakeAll()
}

// BeginCommit announces a checkpoint write on node n that will
// Enqueue when it commits (a forked background writer); EndCommit
// retires it.  The pair keeps WaitIdle honest across the window where
// the generation exists in neither a queue nor a worker.
func (sv *Service) BeginCommit(n *kernel.Node) { sv.inflight[n]++ }

// EndCommit retires a BeginCommit announcement.
func (sv *Service) EndCommit(n *kernel.Node) {
	if sv.inflight[n] > 0 {
		sv.inflight[n]--
	}
	sv.idleW.WakeAll()
}

// Pending returns the number of generations committed, queued, or in
// flight on live nodes (work on dead nodes is lost with the node).
// Eager-replication streams count from the moment they open until
// their fan-out resolves.
func (sv *Service) Pending() int {
	n := 0
	for node, q := range sv.queues {
		if node.Down {
			continue
		}
		n += len(q.jobs)
		if q.busy {
			n++
		}
	}
	for node, c := range sv.inflight {
		if node.Down {
			continue
		}
		n += c
	}
	for node, ss := range sv.streams {
		if node.Down {
			continue
		}
		for _, s := range ss {
			if !s.aborted {
				n++
			}
		}
	}
	return n
}

// PendingOn returns the replication backlog attributable to node n
// alone: queued jobs, the in-service job, in-flight commits, and open
// eager streams.  Heartbeats report it as per-node load telemetry.
func (sv *Service) PendingOn(n *kernel.Node) int {
	c := 0
	if q := sv.queues[n]; q != nil {
		c += len(q.jobs)
		if q.busy {
			c++
		}
	}
	c += sv.inflight[n]
	for _, s := range sv.streams[n] {
		if !s.aborted {
			c++
		}
	}
	return c
}

// SinkSeq returns the last journal seq the standby coordinator sink on
// node n has applied (0 when n hosts no sink) — the replication-lag
// figure heartbeats carry.
func (sv *Service) SinkSeq(n *kernel.Node) int64 {
	if m := sv.sinks[n]; m != nil {
		return m.Seq()
	}
	return 0
}

// WaitIdle blocks the calling task until every live node's replication
// queue has drained.
func (sv *Service) WaitIdle(t *kernel.Task) {
	for sv.Pending() > 0 {
		sv.idleW.WaitTimeout(t.T, 50*time.Millisecond)
	}
}

// SetJournalSink registers the standby coordinator state machine on
// node n: journal records pushed to n's replica daemon are applied to
// it (effects discarded — a standby only mirrors state).
func (sv *Service) SetJournalSink(n *kernel.Node, m *coordstate.Machine) { sv.sinks[n] = m }

// ClearJournalSink detaches n's sink (a standby promoted to leader no
// longer accepts pushed entries — it is the pusher now).
func (sv *Service) ClearJournalSink(n *kernel.Node) { delete(sv.sinks, n) }

// JournalSeen returns the virtual time n's sink last accepted a
// journal op from a leader (ok=false before the first one).  Standby
// watchdogs compare it against the leader's heartbeat cadence: a
// live leader's shipper re-pushes at least every heartbeat interval,
// so prolonged silence means the leader is dead or unreachable.
func (sv *Service) JournalSeen(n *kernel.Node) (sim.Time, bool) {
	ts, ok := sv.sinkSeen[n]
	return ts, ok
}

// ErrDeposed reports that a journal push was refused because the peer
// has seen a newer coordinator epoch: the pusher is a deposed leader
// and must step down.
var ErrDeposed = errors.New("replica: deposed by newer coordinator epoch")

// PushJournal ships the coordinator journal records peerHost lacks,
// using the same want/missing discipline as chunk replication: ask
// the peer's daemon for its epoch and last applied seq, then send
// only the suffix.  When the peer sat out one or more leadership
// changes it may hold entries a dead leader never replicated; the
// pusher — which has every takeover entry — computes the newest seq
// the peer provably shares (FenceFor) and the append instructs the
// peer to rewind there first, so divergent prefixes can never be
// silently extended (double-failure safe).  It returns the peer's
// acknowledged seq.
func (sv *Service) PushJournal(t *kernel.Task, peerHost string, m *coordstate.Machine) (int64, error) {
	p := sv.C.Params
	fd := t.Socket()
	if of, err := t.P.FD(fd); err == nil {
		of.Protected = true // infrastructure socket: not checkpointed
	}
	defer t.Close(fd)
	if err := t.Connect(fd, kernel.Addr{Host: peerHost, Port: Port}); err != nil {
		return 0, fmt.Errorf("replica: journal push to %s: %w", peerHost, err)
	}
	var e bin.Encoder
	e.B = append(e.B, opJWant)
	e.I64(m.Epoch())
	if err := t.SendFrame(fd, e.B); err != nil {
		return 0, err
	}
	resp, err := t.RecvFrame(fd)
	if err != nil {
		return 0, err
	}
	if len(resp) == 0 || resp[0] != opAck {
		return 0, fmt.Errorf("replica: %s refused journal handshake", peerHost)
	}
	d := &bin.Decoder{B: resp[1:]}
	peerEpoch, have := d.I64(), d.I64()
	if peerEpoch > m.Epoch() {
		return 0, fmt.Errorf("%s is on epoch %d, pusher on %d: %w", peerHost, peerEpoch, m.Epoch(), ErrDeposed)
	}
	from := have
	if fence := m.FenceFor(peerEpoch); fence < from {
		from = fence
	}
	if from < m.Base() {
		// The peer predates a journal compaction: the prefix it needs
		// no longer exists as entries.  Ship the state snapshot
		// wholesale (it rewinds the peer past any divergence too), then
		// continue with the materialized suffix.
		base, snap := m.Snapshot()
		var se bin.Encoder
		se.B = append(se.B, opJSnap)
		se.I64(m.Epoch())
		se.I64(base)
		se.Bytes(snap)
		t.Compute(p.JournalAppendCost)
		t.Idle(model.TransferTime(p.NetLatency, p.NetBandwidth, int64(len(snap))))
		if err := t.SendFrame(fd, se.B); err != nil {
			return have, err
		}
		sack, err := t.RecvFrame(fd)
		if err != nil {
			return have, err
		}
		if len(sack) == 0 || sack[0] != opAck {
			return have, fmt.Errorf("replica: %s rejected journal snapshot", peerHost)
		}
		have = (&bin.Decoder{B: sack[1:]}).I64()
		from = base
		sv.Stats.JournalSnapshots++
		sv.Stats.JournalBytes += int64(len(snap))
	}
	entries := m.EntriesSince(from)
	if len(entries) == 0 && from == have {
		return have, nil
	}
	var je bin.Encoder
	je.B = append(je.B, opJAppend)
	je.I64(m.Epoch())
	je.I64(from) // rewind point: the newest seq the peer provably shares
	je.U32(uint32(len(entries)))
	var total int64
	for _, ent := range entries {
		je.I64(ent.Seq)
		je.Bytes(ent.Data)
		total += int64(len(ent.Data))
	}
	t.Compute(time.Duration(len(entries)) * p.JournalAppendCost)
	t.Idle(model.TransferTime(p.NetLatency, p.NetBandwidth, total))
	if err := t.SendFrame(fd, je.B); err != nil {
		return have, err
	}
	ack, err := t.RecvFrame(fd)
	if err != nil {
		return have, err
	}
	if len(ack) == 0 || ack[0] != opAck {
		return have, fmt.Errorf("replica: %s rejected journal batch", peerHost)
	}
	got := (&bin.Decoder{B: ack[1:]}).I64()
	sv.Stats.JournalEntries += len(entries)
	sv.Stats.JournalBytes += total
	return got, nil
}

// Targets returns the ring-placement peers for generations written on
// src: the next Factor live nodes by ID.
func (sv *Service) Targets(src *kernel.Node) []*kernel.Node {
	nodes := sv.C.Nodes()
	var out []*kernel.Node
	for i := 1; i < len(nodes) && len(out) < sv.Cfg.Factor; i++ {
		n := nodes[(int(src.ID)+i)%len(nodes)]
		if n == src || n.Down {
			continue
		}
		out = append(out, n)
	}
	return out
}

// daemonMain is the dmtcp_replicad program: a replication worker plus
// a get-put server.
func (sv *Service) daemonMain(t *kernel.Task, _ []string) {
	sv.daemons[t.P.Node] = t.P
	t.P.SpawnTask("repl-worker", true, sv.worker)
	if t.P.Node.Cluster.Params.ScrubInterval > 0 {
		t.P.SpawnTask("repl-scrub", true, sv.scrubber)
	}
	lfd, err := t.ListenTCP(Port)
	if err != nil {
		t.Printf("dmtcp_replicad: %v\n", err)
		return
	}
	for {
		fd, err := t.Accept(lfd)
		if err != nil {
			return
		}
		c := fd
		t.P.SpawnTask("repl-conn", false, func(h *kernel.Task) { sv.serve(h, c) })
	}
}

// scrubber is the background integrity daemon: it walks this node's
// local store pass after pass, verifying every committed chunk against
// the checksum its manifest carries and quarantining failures (which
// OnCorrupt then routes to the repair drive).  Passes are paced by
// Params.ScrubQoS and separated by a jittered Params.ScrubInterval so
// the fleet's scrubbers stay desynchronized.
func (sv *Service) scrubber(t *kernel.Task) {
	p := t.P.Node.Cluster.Params
	rng := t.P.Node.Cluster.Eng.Rand()
	st := store.Open(t.P.Node, store.Config{Root: sv.Cfg.Root})
	for {
		t.Idle(p.Jitter(rng, p.ScrubInterval))
		start := t.Now()
		res := st.ScrubPass(t, p.ScrubQoS, func(ref store.ChunkRef) {
			sv.Stats.ScrubCorrupt++
			if sv.OnCorrupt != nil {
				sv.OnCorrupt(t, t.P.Node.Hostname, ref)
			}
		})
		sv.Stats.ScrubChunks += res.Checked
		if res.Checked > 0 {
			t.Trace().Span(t.Host(), "replicad scrub", "scrub.pass", "integrity",
				start, t.Now(), obs.A("chunks", int64(res.Checked)),
				obs.A("corrupt", int64(res.Corrupt)), obs.A("bytes", res.Bytes))
		}
	}
}

// worker drains this node's replication queue.
func (sv *Service) worker(t *kernel.Task) {
	q := sv.queue(t.P.Node)
	for {
		for len(q.jobs) == 0 {
			if q.busy {
				q.busy = false
				sv.idleW.WakeAll()
			}
			q.w.Wait(t.T)
		}
		job := q.jobs[0]
		q.jobs = q.jobs[1:]
		q.busy = true
		sv.replicate(t, job)
	}
}

// replicate pushes one committed generation to every placement target
// concurrently — bounded worker tasks, the simulation's goroutines —
// and advances the source store's replication watermark once the full
// fan-out has succeeded.  Parallel pushes shrink the unreplicated
// window recovery must roll back across from the sum of the per-peer
// pushes to roughly the slowest one.  The outcome is independent of
// completion order: the done count and the watermark depend only on
// the set of pushes that succeeded.
func (sv *Service) replicate(t *kernel.Task, job Job) {
	src := t.P.Node
	st := store.Open(src, store.Config{Root: sv.Cfg.Root})
	restored := false
	start := t.Now()
	defer func() {
		if job.Repair {
			ok := int64(0)
			if restored {
				ok = 1
			}
			t.Trace().Span(t.Host(), "replica", "replica.repair", "repl", start, t.Now(),
				obs.A("gen", job.Generation), obs.A("restored", ok))
		}
		if job.OnDone != nil {
			job.OnDone(restored)
		}
	}()
	if job.Cancel != nil && job.Cancel() {
		sv.Stats.RepairCancels++
		return // superseded before its turn came
	}
	m, err := st.LoadManifest(job.ManifestPath)
	if err != nil {
		if job.Repair {
			sv.Stats.RepairCancels++
		}
		return // generation pruned (or lost) before its turn came
	}
	targets := job.Targets
	if targets == nil {
		targets = sv.Targets(src)
	}
	if len(targets) == 0 {
		return
	}
	width := sv.Cfg.FanOut
	if width <= 0 {
		width = DefaultFanOut
	}
	if width > len(targets) {
		width = len(targets)
	}
	next, done, finished := 0, 0, 0
	joinW := sim.NewWaitQueue(sv.C.Eng, src.Hostname+".replfan")
	for i := 0; i < width; i++ {
		t.P.SpawnTask("repl-push", false, func(wt *kernel.Task) {
			for next < len(targets) {
				if job.Cancel != nil && job.Cancel() {
					break // abandon the remaining peers cleanly
				}
				peer := targets[next]
				next++
				if sv.pushTo(wt, st, peer, job, m) {
					done++
					if sv.OnReplicated != nil {
						sv.OnReplicated(job.Name, job.Generation, peer.Hostname)
					}
				}
			}
			finished++
			joinW.WakeAll()
		})
	}
	for finished < width {
		joinW.Wait(t.T)
	}
	if job.Cancel != nil && job.Cancel() && done < len(targets) {
		sv.Stats.RepairCancels++
		return
	}
	if done == len(targets) {
		restored = true
		st.SetReplicationWatermark(t, job.Name, job.Generation)
		sv.Stats.Generations++
		if job.Repair {
			sv.Stats.RepairJobs++
		}
		if sv.OnWatermark != nil {
			sv.OnWatermark(job.Name, job.Generation, src.Hostname)
		}
	}
}

// pushTo copies one generation to one peer, shipping only the chunks
// the peer lacks.
func (sv *Service) pushTo(t *kernel.Task, st *store.Store, peer *kernel.Node, job Job, m *store.Manifest) bool {
	fd := t.Socket()
	defer t.Close(fd)
	if err := t.Connect(fd, kernel.Addr{Host: peer.Hostname, Port: Port}); err != nil {
		return false
	}

	// 1. Dedup handshake: which chunks does the peer lack?
	refs := m.Refs()
	missing, ok := sv.wantMissing(t, fd, refs)
	if !ok {
		return false
	}

	// 2. Ship the manifest first: once it lands, the chunks that
	// follow are referenced the moment they arrive, so the peer's own
	// mark-and-sweep can never treat them as garbage mid-push.
	if !sv.shipManifest(t, fd, job.ManifestPath) {
		return false
	}

	// 3. Ship the missing chunks, then verify the whole generation.
	if !sv.shipChunks(t, st, fd, missing, job) {
		return false
	}
	if !sv.verifyPush(t, st, fd, job.ManifestPath, refs, job) {
		return false
	}
	sv.Stats.Pushes++
	if job.Repair {
		sv.Stats.RepairPushes++
	}
	return true
}

// wantMissing runs the want/missing dedup handshake for one batch of
// refs on an open peer connection, returning the subset the peer
// lacks.
func (sv *Service) wantMissing(t *kernel.Task, fd int, refs []store.ChunkRef) ([]store.ChunkRef, bool) {
	var e bin.Encoder
	e.B = append(e.B, opWant)
	e.U32(uint32(len(refs)))
	for _, r := range refs {
		e.Str(r.Hash)
	}
	if err := t.SendFrame(fd, e.B); err != nil {
		return nil, false
	}
	resp, err := t.RecvFrame(fd)
	if err != nil || len(resp) == 0 || resp[0] != opAck {
		return nil, false
	}
	d := &bin.Decoder{B: resp[1:]}
	nMissing := int(d.U32())
	missing := make([]store.ChunkRef, 0, nMissing)
	for i := 0; i < nMissing && d.Err == nil; i++ {
		idx := int(d.U32())
		if idx < 0 || idx >= len(refs) {
			return nil, false
		}
		missing = append(missing, refs[idx])
	}
	return missing, true
}

// shipManifest sends one manifest to an open peer connection.
func (sv *Service) shipManifest(t *kernel.Task, fd int, manifestPath string) bool {
	p := t.P.Node.Cluster.Params
	ino, err := t.P.Node.FS.ReadFile(manifestPath)
	if err != nil {
		return false
	}
	t.Idle(model.TransferTime(p.NetLatency, p.NetBandwidth, int64(len(ino.Data))))
	var me bin.Encoder
	me.B = append(me.B, opManifest)
	me.Str(manifestPath)
	me.Bytes(ino.Data)
	if err := t.SendFrame(fd, me.B); err != nil {
		return false
	}
	sv.Stats.ManifestBytes += int64(len(ino.Data))
	return true
}

// verifyPush has the peer check a shipped generation against the
// manifest it now holds, re-pushing any holes.  The verification
// closes the remaining race: a chunk the want-reply counted as present
// could have been swept by the peer's GC (its referencing manifest
// pruned) before our manifest arrived to pin it — and, on the eager
// streaming path, a chunk streamed ahead of the manifest could have
// been swept as unreferenced garbage in the same window.
func (sv *Service) verifyPush(t *kernel.Task, st *store.Store, fd int, manifestPath string, refs []store.ChunkRef, job Job) bool {
	for attempt := 0; ; attempt++ {
		var de bin.Encoder
		de.B = append(de.B, opDone)
		de.Str(manifestPath)
		if err := t.SendFrame(fd, de.B); err != nil {
			return false
		}
		ack, err := t.RecvFrame(fd)
		if err != nil || len(ack) == 0 || ack[0] != opAck {
			return false
		}
		d := &bin.Decoder{B: ack[1:]}
		nHoles := int(d.U32())
		if nHoles == 0 {
			return true
		}
		if attempt >= 2 {
			return false
		}
		missing := make([]store.ChunkRef, 0, nHoles)
		for i := 0; i < nHoles && d.Err == nil; i++ {
			idx := int(d.U32())
			if idx < 0 || idx >= len(refs) {
				return false
			}
			missing = append(missing, refs[idx])
		}
		if !sv.shipChunks(t, st, fd, missing, job) {
			return false
		}
	}
}

// shipChunks streams the given chunks to an open peer connection:
// local disk read plus one network transfer of the stored (compressed)
// bytes each.  Chunks travel in stored form — no decompression, and
// the transfer occupies no core.  Repair traffic is paced by
// Params.RepairQoS: after each chunk's transfer the shipper idles
// transfer×(1−q)/q, capping repair at fraction q of the push bandwidth
// so foreground checkpoint replication keeps the rest.  A repair job
// cancelled mid-push (its generation superseded) stops at the next
// chunk boundary instead of finishing a transfer nobody needs.
func (sv *Service) shipChunks(t *kernel.Task, st *store.Store, fd int, refs []store.ChunkRef, job Job) bool {
	p := t.P.Node.Cluster.Params
	repair := job.Repair
	var sent int64
	st.ChargeReadRaw(t, refs)
	for _, ref := range refs {
		if repair && job.Cancel != nil && job.Cancel() {
			return false
		}
		// Verified read: a locally corrupt chunk is quarantined instead
		// of shipped, the push fails, and the repair drive re-sources
		// the generation from a clean holder.
		data, err := st.ReadChunkVerified(t, ref)
		if err != nil {
			return false
		}
		transfer := model.TransferTime(p.NetLatency, p.NetBandwidth, ref.StoredBytes)
		t.Idle(transfer)
		if q := p.RepairQoS; repair && q > 0 && q < 1 {
			t.Idle(time.Duration(float64(transfer) * (1 - q) / q))
		}
		var ce bin.Encoder
		ce.B = append(ce.B, opChunk)
		ce.Str(ref.Hash)
		ce.I64(ref.LogicalBytes)
		ce.I64(ref.StoredBytes)
		ce.F64(ref.Entropy)
		ce.F64(ref.ZeroFrac)
		ce.I64(ref.Heat)
		ce.Str(ref.Sum)
		ce.Bytes(data)
		if err := t.SendFrame(fd, ce.B); err != nil {
			return false
		}
		sv.Stats.ChunksSent++
		sv.Stats.BytesSent += ref.StoredBytes
		sent += ref.StoredBytes
	}
	t.Trace().Add(t.Host(), "repl.bytes_sent", t.Now(), sent)
	return true
}

// serve handles one peer connection against this node's store.
func (sv *Service) serve(t *kernel.Task, fd int) {
	defer t.Close(fd)
	st := store.Open(t.P.Node, store.Config{Root: sv.Cfg.Root})
	p := t.P.Node.Cluster.Params
	for {
		frame, err := t.RecvFrame(fd)
		if err != nil {
			return
		}
		if len(frame) == 0 {
			continue
		}
		t.Compute(p.ReplicaRPCCost)
		body := frame[1:]
		switch frame[0] {
		case opWant:
			d := &bin.Decoder{B: body}
			n := int(d.U32())
			var e bin.Encoder
			e.B = append(e.B, opAck)
			var idx []uint32
			for i := 0; i < n && d.Err == nil; i++ {
				hash := d.Str()
				t.Compute(p.ChunkLookupCost)
				if !st.HasChunk(hash) {
					idx = append(idx, uint32(i))
				}
			}
			e.U32(uint32(len(idx)))
			for _, i := range idx {
				e.U32(i)
			}
			t.SendFrame(fd, e.B)
		case opChunk:
			d := &bin.Decoder{B: body}
			ref := store.ChunkRef{Hash: d.Str()}
			ref.LogicalBytes = d.I64()
			ref.StoredBytes = d.I64()
			ref.Entropy = d.F64()
			ref.ZeroFrac = d.F64()
			ref.Heat = d.I64()
			ref.Sum = d.Str()
			data := d.Bytes()
			if d.Err == nil {
				// A chunk failing content verification is never
				// installed; the pusher's opDone hole check will see the
				// gap and re-ship.
				st.PutReplicaChunk(t, ref, data)
			}
		case opManifest:
			d := &bin.Decoder{B: body}
			path := d.Str()
			data := d.Bytes()
			if d.Err == nil {
				st.PutRawManifest(t, path, data)
			}
		case opDone:
			// Verify the pushed generation: report the index of every
			// manifest chunk this store does not actually hold, so the
			// pusher can fill holes its want-reply missed.
			d := &bin.Decoder{B: body}
			path := d.Str()
			m, err := st.LoadManifest(path)
			if err != nil {
				t.SendFrame(fd, []byte{opErr})
				continue
			}
			var holes []uint32
			for i, ref := range m.Refs() {
				t.Compute(p.ChunkLookupCost)
				if !st.HasChunk(ref.Hash) {
					holes = append(holes, uint32(i))
				}
			}
			var e bin.Encoder
			e.B = append(e.B, opAck)
			e.U32(uint32(len(holes)))
			for _, i := range holes {
				e.U32(i)
			}
			t.SendFrame(fd, e.B)
		case opJWant:
			mach := sv.sinks[t.P.Node]
			if mach == nil {
				t.SendFrame(fd, []byte{opErr})
				continue
			}
			d := &bin.Decoder{B: body}
			epoch := d.I64()
			// The handshake is read-only, so even a stale-epoch pusher
			// gets an honest answer: seeing the newer epoch in the ack
			// is exactly how a deposed leader learns it must step down
			// (PushJournal turns it into ErrDeposed).  Only the write
			// ops below fence.
			if epoch >= mach.Epoch() {
				sv.sinkSeen[t.P.Node] = t.Now()
			}
			var e bin.Encoder
			e.B = append(e.B, opAck)
			e.I64(mach.Epoch())
			e.I64(mach.Seq())
			t.SendFrame(fd, e.B)
		case opJSnap:
			mach := sv.sinks[t.P.Node]
			if mach == nil {
				t.SendFrame(fd, []byte{opErr})
				continue
			}
			d := &bin.Decoder{B: body}
			epoch, base := d.I64(), d.I64()
			data := d.Bytes()
			if d.Err != nil || epoch < mach.Epoch() {
				// A deposed leader cannot rewind a newer epoch's state.
				sv.Stats.FencedWrites++
				t.Trace().Add(t.Host(), "coord.fenced_writes", t.Now(), 1)
				t.SendFrame(fd, []byte{opErr})
				continue
			}
			t.Compute(p.JournalAppendCost)
			if err := mach.InstallSnapshot(base, data); err != nil {
				t.SendFrame(fd, []byte{opErr})
				continue
			}
			var e bin.Encoder
			e.B = append(e.B, opAck)
			e.I64(mach.Seq())
			t.SendFrame(fd, e.B)
		case opJAppend:
			mach := sv.sinks[t.P.Node]
			if mach == nil {
				t.SendFrame(fd, []byte{opErr})
				continue
			}
			d := &bin.Decoder{B: body}
			epoch, from := d.I64(), d.I64()
			if d.Err != nil || epoch < mach.Epoch() {
				// Fenced: stale-epoch entries must never extend (or
				// rewind) the new epoch's history.
				sv.Stats.FencedWrites++
				t.Trace().Add(t.Host(), "coord.fenced_writes", t.Now(), 1)
				t.SendFrame(fd, []byte{opErr})
				continue
			}
			if from < mach.Seq() {
				// Entries beyond the leader-computed fence were made by
				// a dead leader and never reached the current one:
				// rewind, then replay the authoritative suffix.
				mach.TruncateTo(from)
			}
			n := int(d.U32())
			for i := 0; i < n && d.Err == nil; i++ {
				seq := d.I64()
				data := d.Bytes()
				if d.Err != nil || seq != mach.Seq()+1 {
					break // hole: the ack's seq makes the pusher re-ship
				}
				t.Compute(p.JournalAppendCost)
				if _, err := mach.ApplyEntry(coordstate.Entry{Seq: seq, Data: data}); err != nil {
					break
				}
			}
			var e bin.Encoder
			e.B = append(e.B, opAck)
			e.I64(mach.Seq())
			t.SendFrame(fd, e.B)
		case opGetMan:
			d := &bin.Decoder{B: body}
			path := d.Str()
			ino, err := t.P.Node.FS.ReadFile(path)
			if err != nil {
				t.SendFrame(fd, []byte{opErr})
				continue
			}
			t.P.Node.ReadPipeFor(path).Read(t.T, ino.Size())
			t.Idle(model.TransferTime(p.NetLatency, p.NetBandwidth, ino.Size()))
			var e bin.Encoder
			e.B = append(e.B, opAck)
			e.Bytes(ino.Data)
			t.SendFrame(fd, e.B)
		case opGetChunk:
			d := &bin.Decoder{B: body}
			hash := d.Str()
			sum := d.Str()
			ino, err := t.P.Node.FS.ReadFile(st.ChunkPath(hash))
			if err != nil {
				t.SendFrame(fd, []byte{opErr})
				continue
			}
			if sum != "" && store.ContentSum(ino.Data) != sum {
				// The requester told us what the bytes should hash to
				// and ours don't: quarantine the local copy and decline,
				// so the fetcher falls back to another holder and the
				// repair drive re-replicates a clean copy here.
				st.Quarantine(t, hash)
				sv.Stats.CorruptServed++
				t.SendFrame(fd, []byte{opErr})
				continue
			}
			t.P.Node.ReadPipeFor(st.ChunkPath(hash)).Read(t.T, ino.Size())
			t.Idle(model.TransferTime(p.NetLatency, p.NetBandwidth, ino.Size()))
			var e bin.Encoder
			e.B = append(e.B, opAck)
			e.Bytes(ino.Data)
			t.SendFrame(fd, e.B)
			sv.Stats.FetchChunks++
			sv.Stats.FetchBytes += ino.Size()
		}
	}
}

// EnsureLocal makes one manifest generation restorable on the calling
// task's node, fetching the manifest and any chunks the local store
// lacks from the replica daemon on fromHost.  This is the restart-time
// remote-fetch path: recovery and migration both ride it, and because
// it asks only for missing chunks, a node that already holds replicas
// fetches ~nothing.
func (sv *Service) EnsureLocal(t *kernel.Task, manifestPath, fromHost string) (FetchStats, error) {
	return sv.EnsureLocalN(t, manifestPath, fromHost, 1)
}

// EnsureLocalN is EnsureLocal with a parallel fetch pool: missing
// chunks are partitioned across workers tasks, each pulling over its
// own connection to fromHost's daemon, so a recovery fetch can use the
// peer's read bandwidth and the local cores (chunk writes land
// decompressed-never, but local store writes still cost bandwidth)
// instead of serializing request/response round trips.
func (sv *Service) EnsureLocalN(t *kernel.Task, manifestPath, fromHost string, workers int) (FetchStats, error) {
	var fs FetchStats
	fetched, err := sv.EnsureManifest(t, manifestPath, fromHost)
	if err != nil {
		return fs, err
	}
	fs.ManifestFetched = fetched
	local := store.Open(t.P.Node, store.Config{Root: sv.Cfg.Root})
	m, err := local.LoadManifest(manifestPath)
	if err != nil {
		return fs, err
	}
	missing := local.MissingChunks(m.Refs())
	if len(missing) == 0 {
		return fs, nil
	}
	bytes, chunks, err := sv.FetchChunks(t, fromHost, missing, workers, nil)
	fs.Bytes += bytes
	fs.Chunks += chunks
	return fs, err
}

// EnsureManifest makes one manifest present in the calling node's
// store, pulling it from fromHost's replica daemon when the local
// filesystem lacks it.  It reports whether a fetch happened.
func (sv *Service) EnsureManifest(t *kernel.Task, manifestPath, fromHost string) (bool, error) {
	if t.P.Node.FS.Exists(manifestPath) {
		return false, nil
	}
	local := store.Open(t.P.Node, store.Config{Root: sv.Cfg.Root})
	fd := t.Socket()
	if of, err := t.P.FD(fd); err == nil {
		of.Protected = true // infrastructure socket: not checkpointed
	}
	defer t.Close(fd)
	if err := t.Connect(fd, kernel.Addr{Host: fromHost, Port: Port}); err != nil {
		return false, fmt.Errorf("replica: fetch %s from %s: %w", manifestPath, fromHost, err)
	}
	var e bin.Encoder
	e.B = append(e.B, opGetMan)
	e.Str(manifestPath)
	if err := t.SendFrame(fd, e.B); err != nil {
		return false, err
	}
	resp, err := t.RecvFrame(fd)
	if err != nil {
		return false, err
	}
	if len(resp) == 0 || resp[0] != opAck {
		return false, fmt.Errorf("replica: %s has no manifest %s", fromHost, manifestPath)
	}
	d := &bin.Decoder{B: resp[1:]}
	local.PutRawManifest(t, manifestPath, d.Bytes())
	return true, nil
}

// FetchChunks pulls the given chunks from fromHost's replica daemon
// into the calling node's store over up to workers connections,
// invoking deliver (when non-nil) as each chunk lands — the pull-
// stream peer of the eager-replication Stream, and what the streamed
// restore pipeline consumes: an install pool decompresses delivered
// chunks while later ones are still in flight.  Chunks already local
// are delivered without touching the network.  It returns the stored
// bytes and chunk count actually transferred; on error, everything
// delivered so far is durable and the caller may resume against
// another holder with the still-missing subset.
func (sv *Service) FetchChunks(t *kernel.Task, fromHost string, refs []store.ChunkRef, workers int, deliver func(store.ChunkRef)) (int64, int, error) {
	local := store.Open(t.P.Node, store.Config{Root: sv.Cfg.Root})
	var todo []store.ChunkRef
	for _, ref := range refs {
		if local.HasChunk(ref.Hash) {
			if deliver != nil {
				deliver(ref)
			}
			continue
		}
		todo = append(todo, ref)
	}
	if len(todo) == 0 {
		return 0, 0, nil
	}
	pullStart := t.Now()
	var bytes int64
	chunks := 0
	// fetchOne pulls one chunk over an open connection.
	fetchOne := func(ft *kernel.Task, cfd int, ref store.ChunkRef) error {
		var e bin.Encoder
		e.B = append(e.B, opGetChunk)
		e.Str(ref.Hash)
		e.Str(ref.Sum)
		if err := ft.SendFrame(cfd, e.B); err != nil {
			return err
		}
		resp, err := ft.RecvFrame(cfd)
		if err != nil {
			return err
		}
		if len(resp) == 0 || resp[0] != opAck {
			return fmt.Errorf("replica: %s lacks chunk %s", fromHost, ref.Hash)
		}
		d := &bin.Decoder{B: resp[1:]}
		if _, err := local.PutReplicaChunk(ft, ref, d.Bytes()); err != nil {
			return fmt.Errorf("replica: fetch %s from %s: %w", ref.Hash, fromHost, err)
		}
		bytes += ref.StoredBytes
		chunks++
		if deliver != nil {
			deliver(ref)
		}
		return nil
	}
	// Workers claim chunks through the shared worker pool, each over
	// its own (lazily dialed) connection to the serving daemon.
	// Connections live in the calling process's fd table and are
	// closed after the pool drains.
	if workers < 1 {
		workers = 1
	}
	conns := map[*kernel.Task]int{}
	defer func() {
		for _, cfd := range conns {
			t.Close(cfd)
		}
	}()
	err := kernel.RunWorkers(t, workers, len(todo), "fetch-worker", func(ft *kernel.Task, i int) error {
		cfd, ok := conns[ft]
		if !ok {
			cfd = ft.Socket()
			if of, ferr := ft.P.FD(cfd); ferr == nil {
				of.Protected = true
			}
			conns[ft] = cfd
			if cerr := ft.Connect(cfd, kernel.Addr{Host: fromHost, Port: Port}); cerr != nil {
				return cerr
			}
		}
		return fetchOne(ft, cfd, todo[i])
	})
	t.Trace().Span(t.Host(), "replicad pull", "repl.fetch", "repl", pullStart, t.Now(),
		obs.A("bytes", bytes), obs.A("chunks", int64(chunks)), obs.A("workers", int64(workers)))
	t.Trace().Add(t.Host(), "repl.bytes_fetched", t.Now(), bytes)
	if err != nil {
		return bytes, chunks, fmt.Errorf("replica: fetch chunks from %s: %w", fromHost, err)
	}
	return bytes, chunks, nil
}
