// Package retry is the unified failure policy for every reconnect and
// re-send loop in the stack.  Before it existed each site hand-rolled
// its own capped-exponential backoff (manager redial, restart
// dialCoord, journal ship retry), all fully deterministic — so a
// healed partition woke every stalled client on the same virtual
// nanosecond and they stampeded the coordinator in lockstep.  A Policy
// derives from model.Params, and every delay it deals is jittered by
// ±Params.RetryJitterPct from the seeded engine RNG: reproducible per
// seed, desynchronized within a run.
package retry

import (
	"math/rand"
	"time"

	"repro/internal/model"
)

// Policy is a deadline/retry/backoff schedule: delays start at Base,
// double up to Cap, and the caller gives up once Deadline of virtual
// time has elapsed (tracked by the caller against its own clock).
type Policy struct {
	Base     time.Duration
	Cap      time.Duration
	Deadline time.Duration
	// JitterPct perturbs each dealt delay by ±JitterPct (uniform).
	JitterPct float64
}

// CoordRetry is the manager-side coordinator redial policy: it must
// ride out failure detection plus election plus resync.
func CoordRetry(p *model.Params) Policy {
	return Policy{
		Base:      p.CoordRetryBase,
		Cap:       p.CoordRetryCap,
		Deadline:  p.CoordRetryWindow,
		JitterPct: p.RetryJitterPct,
	}
}

// RestartDial is the restart program's coordinator dial policy: the
// redial window widened by detection and election time, since a
// restart may begin while a takeover is still settling.
func RestartDial(p *model.Params) Policy {
	pol := CoordRetry(p)
	pol.Deadline = p.FailureDetectDelay + p.ElectionTimeout + p.CoordRetryWindow
	return pol
}

// JournalShip is the leader's journal-push retry policy toward an
// unreachable standby: flat delay (no exponential growth — the push
// loop doubles as the leader heartbeat, so backing off further would
// slow failure detection), no deadline (the shipper retries as long
// as it leads).
func JournalShip(p *model.Params) Policy {
	return Policy{
		Base:      p.JournalRetryDelay,
		Cap:       p.JournalRetryDelay,
		JitterPct: p.RetryJitterPct,
	}
}

// Backoff deals the policy's delay sequence.  Not safe for sharing
// across tasks; make one per retry loop.
type Backoff struct {
	pol  Policy
	rng  *rand.Rand
	next time.Duration
}

// Backoff starts a delay sequence using the given seeded RNG (the
// engine's, so runs stay reproducible per seed).
func (p Policy) Backoff(rng *rand.Rand) *Backoff {
	return &Backoff{pol: p, rng: rng, next: p.Base}
}

// Next returns the next delay to sleep: the current backoff step,
// jittered.  The undealt step then doubles, capped at Cap.
func (b *Backoff) Next() time.Duration {
	d := b.next
	b.next *= 2
	if b.pol.Cap > 0 && b.next > b.pol.Cap {
		b.next = b.pol.Cap
	}
	if j := b.pol.JitterPct; j > 0 && b.rng != nil && d > 0 {
		d = time.Duration(float64(d) * (1 + j*(2*b.rng.Float64()-1)))
	}
	return d
}
