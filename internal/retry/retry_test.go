package retry

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
)

func TestBackoffDoublesAndCaps(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond}
	b := p.Backoff(nil) // no jitter without an RNG
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Errorf("step %d = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterIsBoundedAndSeeded(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 100 * time.Millisecond, JitterPct: 0.2}
	seq := func(seed int64) []time.Duration {
		b := p.Backoff(rand.New(rand.NewSource(seed)))
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, bs, c := seq(1), seq(1), seq(2)
	varied := false
	for i := range a {
		if a[i] != bs[i] {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, a[i], bs[i])
		}
		lo, hi := 80*time.Millisecond, 120*time.Millisecond
		if a[i] < lo || a[i] > hi {
			t.Errorf("step %d = %v outside ±20%% band", i, a[i])
		}
		if a[i] != c[i] {
			varied = true
		}
		if a[i] != 100*time.Millisecond {
			varied = true
		}
	}
	if !varied {
		t.Errorf("jitter had no effect across seeds")
	}
}

func TestPoliciesDeriveFromParams(t *testing.T) {
	p := model.Default()
	cr := CoordRetry(p)
	if cr.Base != p.CoordRetryBase || cr.Cap != p.CoordRetryCap || cr.Deadline != p.CoordRetryWindow {
		t.Errorf("CoordRetry = %+v, want params-derived", cr)
	}
	rd := RestartDial(p)
	if rd.Deadline != p.FailureDetectDelay+p.ElectionTimeout+p.CoordRetryWindow {
		t.Errorf("RestartDial deadline = %v", rd.Deadline)
	}
	js := JournalShip(p)
	if js.Base != p.JournalRetryDelay || js.Cap != p.JournalRetryDelay {
		t.Errorf("JournalShip = %+v", js)
	}
	if cr.JitterPct <= 0 {
		t.Errorf("default policies must carry jitter, got %v", cr.JitterPct)
	}
}
