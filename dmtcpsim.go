// Package dmtcpsim is the public API of the DMTCP reproduction: a
// deterministic simulation of transparent distributed checkpointing
// for cluster computations and the desktop, after Ansel, Arya &
// Cooperman, "DMTCP: Transparent Checkpointing for Cluster
// Computations and the Desktop" (IPDPS 2009).
//
// A Sim wires together a virtual cluster (nodes, kernels, TCP
// network, disks), a DMTCP session (coordinator, per-process
// checkpoint managers injected via the simulated LD_PRELOAD), and the
// paper's workloads (21 desktop applications, MPICH2/OpenMPI resource
// managers, the NAS Parallel Benchmarks, ParGeant4, iPython).  The
// three shipped commands mirror the paper's user interface:
//
//	sim.Launch(node, prog, args...)   // dmtcp_checkpoint prog args
//	sim.Checkpoint(task)              // dmtcp_command --checkpoint
//	sim.Restart(task, round, place)   // dmtcp_restart script
//
// Custom applications implement Program (and Resumable to survive
// restarts); see examples/ for complete scenarios, including the
// paper's cluster-to-laptop migration and deadlock-revert use cases.
package dmtcpsim

import (
	"time"

	"repro/internal/dmtcp"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/sim"
)

// Re-exported core types: these aliases are the supported public
// surface over the internal packages.
type (
	// Task is the calling thread inside a simulated process; programs
	// receive one and make all "system calls" through it.
	Task = kernel.Task
	// Process is a simulated OS process.
	Process = kernel.Process
	// Program is an executable registered with the cluster.
	Program = kernel.Program
	// Resumable is a Program that can continue from a restored
	// checkpoint (see DESIGN.md on the resumable-program model).
	Resumable = kernel.Resumable
	// ProgramFunc adapts a function to Program.
	ProgramFunc = kernel.ProgramFunc
	// Addr is a host:port address in the simulated network.
	Addr = kernel.Addr
	// NodeID identifies a cluster node.
	NodeID = kernel.NodeID
	// Cluster is the simulated machine room.
	Cluster = kernel.Cluster
	// Node is one simulated machine.
	Node = kernel.Node
	// FaultRule describes one injected network fault (partition, loss,
	// latency, connection refusal) between host sets; see
	// Cluster.InjectFault, HealFault, IsolateHost and PartitionHosts.
	FaultRule = kernel.FaultRule

	// Config selects checkpointing behavior (compression, fsync,
	// forked checkpointing, interval, checkpoint directory).
	Config = dmtcp.Config
	// CkptRound reports a completed cluster-wide checkpoint.
	CkptRound = dmtcp.CkptRound
	// RestartStages breaks a restart into Table-1b stages.
	RestartStages = dmtcp.RestartStages
	// Recovery reports one node-failure recovery drive.
	Recovery = dmtcp.Recovery
	// Placement maps original hostnames to restart nodes.
	Placement = dmtcp.Placement
	// StageTimes breaks a checkpoint into Table-1a stages.
	StageTimes = dmtcp.StageTimes
	// AwareAPI is the dmtcpaware programming interface (§3.1).
	AwareAPI = dmtcp.AwareAPI

	// Params is the calibrated performance model.
	Params = model.Params
	// MemClass characterizes memory compressibility.
	MemClass = model.MemClass

	// Engine is the discrete-event simulator.
	Engine = sim.Engine

	// Table is a rendered experiment result.
	Table = experiments.Table
	// Opts controls experiment scale.
	Opts = experiments.Opts

	// Tracer records virtual-time spans and per-node counters across
	// every layer; export with ChromeTrace (Perfetto) or Report.
	Tracer = obs.Tracer

	// CriticalPath is the analyzer's blocking-chain summary over a
	// trace: per checkpoint round and per restart, which node's which
	// stage bounded each barrier, per-node breakdowns, straggler
	// scores, and pipeline overlap efficiency.
	CriticalPath = analyze.Summary
)

// NewTracer returns an empty tracer; attach it via Options.Tracer (one
// tracer may observe several Sims — each New call starts a new run).
func NewTracer() *Tracer { return obs.NewTracer() }

// AnalyzeTrace runs the deterministic critical-path pass over
// everything the tracer has recorded.
func AnalyzeTrace(tr *Tracer) *CriticalPath { return analyze.Analyze(tr) }

// AttachAnalyzer appends the critical-path section to every subsequent
// tr.Report().
func AttachAnalyzer(tr *Tracer) { analyze.Attach(tr) }

// AnnotateFlows appends Perfetto flow arrows linking each round's (and
// restart's) consecutive blocking stage spans; call it after the
// simulation, before ChromeTrace.
func AnnotateFlows(tr *Tracer) { analyze.AnnotateFlows(tr) }

// TraceExperiments attaches tr to every experiment cluster built from
// now on (each Env becomes its own tracer run); pass nil to detach.
// The bench driver uses it to record spans across all trials and embed
// each experiment's critical-path block in its Table.
func TraceExperiments(tr *Tracer) { experiments.Tracing = tr }

// Aware returns the dmtcpaware handle for a process (nil when the
// process does not run under DMTCP).
func Aware(p *Process) *AwareAPI { return dmtcp.Aware(p) }

// DirtyAppName is the registered synthetic workload that maps a large
// heap and idles; pair it with TouchHeap to drive controlled
// dirty-page rates against the incremental checkpoint store.
const DirtyAppName = experiments.DirtyAppName

// LazyAppName is the registered synthetic workload for post-copy
// restores: like DirtyAppName, but its Restore performs strided
// first-touch heap accesses that demand-fault against a lazy restart's
// background prefetch.
const LazyAppName = experiments.LazyAppName

// StragglerThreshold is the straggler score (node stage time over the
// round median) above which reports call a node out and the
// coordinator's response path boosts its next-round worker pool.
const StragglerThreshold = analyze.StragglerThreshold

// TouchHeap dirties frac of a process's heap chunks (salt rotates the
// working set deterministically between calls).
func TouchHeap(p *Process, frac float64, salt uint64) { experiments.TouchHeap(p, frac, salt) }

// Sim is a simulated cluster with a DMTCP session installed and every
// paper workload registered.
type Sim struct {
	Eng *Engine
	C   *Cluster
	Sys *dmtcp.System
}

// Options configures a new simulation.
type Options struct {
	// Seed drives the deterministic engine (default 1).
	Seed int64
	// Nodes is the cluster size (default 4).
	Nodes int
	// Checkpoint selects session-wide checkpointing behavior.
	Checkpoint Config
	// Jitter adds run-to-run variance (fraction, e.g. 0.06); zero
	// keeps runs bit-identical.
	Jitter float64
	// Tracer, when non-nil, records spans/counters from every layer of
	// this simulation in deterministic virtual time.
	Tracer *Tracer
}

// New builds a simulation ready to run scenarios.
func New(o Options) *Sim {
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	env := experiments.NewEnv(o.Seed, o.Nodes, o.Checkpoint)
	env.C.Params.JitterPct = o.Jitter
	if o.Tracer != nil {
		o.Tracer.BeginRun()
		env.C.Trace = o.Tracer
	}
	return &Sim{Eng: env.Eng, C: env.C, Sys: env.Sys}
}

// Register adds a custom program to the cluster; implement Resumable
// so it survives restarts.
func (s *Sim) Register(name string, p Program) { s.C.Register(name, p) }

// Launch starts `dmtcp_checkpoint prog args...` on the given node.
func (s *Sim) Launch(node NodeID, prog string, args ...string) (*Process, error) {
	return s.Sys.Launch(node, prog, args...)
}

// Checkpoint requests a cluster-wide checkpoint from the calling task
// and blocks until it completes.
func (s *Sim) Checkpoint(t *Task) (*CkptRound, error) { return s.Sys.Checkpoint(t) }

// KillAll terminates every checkpointed process (the failure a
// restart recovers from); it returns how many were killed.
func (s *Sim) KillAll() int { return s.Sys.KillManaged() }

// Restart restores every process of a round, optionally on different
// nodes, and blocks until the computation is running again.
func (s *Sim) Restart(t *Task, round *CkptRound, place Placement) (*RestartStages, error) {
	return s.Sys.RestartAll(t, round, place)
}

// KillNode models a machine losing power: every process on the node
// dies and its local files (checkpoints included) are lost.  It
// returns the number of processes killed.
func (s *Sim) KillNode(id NodeID) int { return s.C.KillNode(id) }

// SlowNode dilates a node's per-core compute rate by factor (2 = half
// speed), modeling a straggler — thermal throttling, a failing disk,
// or a noisy neighbor.  It reports whether the host exists.
func (s *Sim) SlowNode(host string, factor float64) bool { return s.C.SlowNode(host, factor) }

// Recover drives node-failure recovery: the coordinator rolls the
// computation back to the newest fully-replicated checkpoint round and
// restarts the lost processes on a surviving replica holder.  Requires
// Config.Store and Config.ReplicaFactor.
func (s *Sim) Recover(t *Task) (*Recovery, error) { return s.Sys.Recover(t) }

// RestartScript renders the generated dmtcp_restart_script.sh for a
// round (§3).
func RestartScript(round *CkptRound) string { return dmtcp.RestartScript(round) }

// Run drives a scenario: fn runs as an orchestration task on node 0,
// with the whole cluster live; the simulation ends when fn returns.
func (s *Sim) Run(fn func(*Task)) {
	s.C.RegisterFunc("scenario", func(task *Task, _ []string) {
		task.Compute(2 * time.Millisecond) // let daemons come up
		fn(task)
		s.Eng.Stop()
	})
	if _, err := s.C.Node(0).Kern.Spawn("scenario", nil, nil); err != nil {
		panic(err)
	}
	if err := s.Eng.Run(); err != nil {
		panic(err)
	}
	s.Eng.Shutdown()
}

// Experiments: regenerate the paper's tables and figures.  Each
// returns a Table whose Render method prints the series.
var (
	RunFig3          = experiments.RunFig3
	RunFig4          = experiments.RunFig4
	RunFig5          = experiments.RunFig5
	RunFig6          = experiments.RunFig6
	RunTable1        = experiments.RunTable1
	RunRunCMS        = experiments.RunRunCMS
	RunSyncCost      = experiments.RunSyncCost
	RunForked        = experiments.RunForked
	RunBarrier       = experiments.RunBarrier
	RunDejaVu        = experiments.RunDejaVu
	RunStore         = experiments.RunStore
	RunFailover      = experiments.RunFailover
	RunCoordFailover = experiments.RunCoordFailover
	RunChaos         = experiments.RunChaos
	RunPipeline      = experiments.RunPipeline
	RunRestore       = experiments.RunRestore
	RunRestoreLazy   = experiments.RunRestoreLazy
	RunAll           = experiments.All
)
