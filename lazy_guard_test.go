package dmtcpsim_test

// Accounting guards for the lazy post-copy restore path: the resume
// pause and prefetch drain must partition the restart wall exactly,
// the five restart segments (prefetch included) must reconcile against
// restart.total within 1%, every demand fault must leave a span, and
// the whole traced scenario must stay byte-deterministic.

import (
	"bytes"
	"testing"
	"time"

	dmtcpsim "repro"
	"repro/internal/kernel"
	"repro/internal/model"
)

// driveLazyTraced runs the canonical lazy-restore scenario — an
// uncompressed checkpoint replicated to three more holders, the
// process killed, a post-copy restart on cold node0 — and returns the
// restart stats and the tracer.
func driveLazyTraced(seed int64) (*dmtcpsim.RestartStages, *dmtcpsim.Tracer) {
	tr := dmtcpsim.NewTracer()
	s := dmtcpsim.New(dmtcpsim.Options{Seed: seed, Nodes: 5,
		Checkpoint: dmtcpsim.Config{Compress: false, Store: true, StoreKeep: 2,
			ReplicaFactor: 3, CkptWorkers: 4, LazyRestore: true},
		Tracer: tr})
	var stats *dmtcpsim.RestartStages
	s.Run(func(t *dmtcpsim.Task) {
		if _, err := s.Launch(1, dmtcpsim.LazyAppName, "96"); err != nil {
			panic(err)
		}
		t.Compute(200 * time.Millisecond)
		round, err := s.Checkpoint(t)
		if err != nil {
			panic(err)
		}
		s.Sys.Replica.WaitIdle(t)
		s.KillAll()
		if stats, err = s.Restart(t, round, dmtcpsim.Placement{"node01": 0}); err != nil {
			panic(err)
		}
	})
	return stats, tr
}

// TestLazyRestartSpanAccounting extends the restart partition guard to
// post-copy restarts: with the prefetch segment included, the five
// restart stages must still sum to restart.total within 1%, and the
// span args must agree with the stats the coordinator aggregated.
func TestLazyRestartSpanAccounting(t *testing.T) {
	stats, tr := driveLazyTraced(29)
	evs := tr.Events()
	totals := spansNamed(evs, "restart.total")
	if len(totals) != 1 {
		t.Fatalf("expected 1 restart.total span, got %d", len(totals))
	}
	rs := totals[0]
	var sum int64
	segs := []string{"restart.images", "restart.files", "restart.conns", "restart.procs", "restart.prefetch"}
	for _, name := range segs {
		for _, e := range spansNamed(evs, name) {
			if e.Pid == rs.Pid && e.Tid == rs.Tid {
				sum += int64(e.Dur)
			}
		}
	}
	if !within1pct(sum, int64(rs.Dur)) {
		t.Errorf("lazy restart segments sum %d ns != restart wall %d ns (>1%% off)", sum, rs.Dur)
	}

	prefetch := spansNamed(evs, "restart.prefetch")
	if len(prefetch) != 1 {
		t.Fatalf("expected 1 restart.prefetch span, got %d", len(prefetch))
	}
	if got := argVal(t, prefetch[0], "demand_faults"); got != int64(stats.DemandFaults) {
		t.Errorf("restart.prefetch demand_faults=%d, stats say %d", got, stats.DemandFaults)
	}
	if got := argVal(t, rs, "demand_bytes"); got != stats.DemandBytes {
		t.Errorf("restart.total demand_bytes=%d, stats say %d", got, stats.DemandBytes)
	}
	if got := argVal(t, rs, "prefetch_bytes"); got != stats.PrefetchBytes {
		t.Errorf("restart.total prefetch_bytes=%d, stats say %d", got, stats.PrefetchBytes)
	}

	// Every demand fault leaves a lazy.fault span on the restored
	// process's track, and the skeleton restore leaves its own span.
	if faults := spansNamed(evs, "lazy.fault"); len(faults) != stats.DemandFaults {
		t.Errorf("%d lazy.fault spans, stats report %d demand faults", len(faults), stats.DemandFaults)
	}
	if skel := spansNamed(evs, "restore.skeleton"); len(skel) != 1 {
		t.Errorf("expected 1 restore.skeleton span, got %d", len(skel))
	}
}

// TestLazyRestartStatsReconcile audits the satellite accounting fix:
// demand-fault bytes and prefetch bytes are reported separately, the
// resume pause plus the drain IS the restart total, and what remains
// of FetchedBytes after subtracting both is exactly the skeleton —
// positive and within the configured hot-chunk budget.
func TestLazyRestartStatsReconcile(t *testing.T) {
	stats, _ := driveLazyTraced(31)
	if stats.ResumePause <= 0 || stats.PrefetchDrain <= 0 {
		t.Fatalf("no pause/drain split: %+v", stats)
	}
	if got := stats.ResumePause + stats.PrefetchDrain; got != stats.Total {
		t.Errorf("pause %v + drain %v != total %v", stats.ResumePause, stats.PrefetchDrain, stats.Total)
	}
	if stats.DemandFaults == 0 || stats.DemandBytes <= 0 || stats.PrefetchBytes <= 0 {
		t.Fatalf("demand/prefetch accounting empty: %+v", stats)
	}
	skeleton := stats.FetchedBytes - stats.DemandBytes - stats.PrefetchBytes
	budget := int64(model.Default().LazySkeletonChunks) * kernel.CkptChunkBytes
	if skeleton <= 0 || skeleton > budget {
		t.Errorf("skeleton = fetched %d - demand %d - prefetch %d = %d, want in (0, %d]",
			stats.FetchedBytes, stats.DemandBytes, stats.PrefetchBytes, skeleton, budget)
	}
}

// TestLazyTraceDeterministic pins the new concurrent machinery — the
// striped pull stream, the background installer, fault preemption —
// to the engine's determinism contract: same seed, same bytes.
func TestLazyTraceDeterministic(t *testing.T) {
	_, tr1 := driveLazyTraced(37)
	_, tr2 := driveLazyTraced(37)
	b1, b2 := tr1.ChromeTrace(), tr2.ChromeTrace()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same lazy seed produced different traces: %d vs %d bytes", len(b1), len(b2))
	}
}
