// Command dmtcpsim runs interactive demonstration scenarios of the
// DMTCP reproduction: launching workloads under checkpoint control,
// checkpointing them, killing everything, and restarting from images.
//
// Usage:
//
//	dmtcpsim -scenario quickstart|mpi|migrate|vnc [-nodes n]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	dmtcpsim "repro"
	"repro/internal/apps"
	"repro/internal/mpi"
)

func main() {
	var (
		scenario = flag.String("scenario", "quickstart", "quickstart|mpi|migrate|vnc")
		nodes    = flag.Int("nodes", 4, "cluster size")
	)
	flag.Parse()
	switch *scenario {
	case "quickstart":
		quickstart(*nodes)
	case "mpi":
		mpiScenario(*nodes)
	case "migrate":
		migrate(*nodes)
	case "vnc":
		vnc()
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
}

func quickstart(nodes int) {
	s := dmtcpsim.New(dmtcpsim.Options{Nodes: nodes, Checkpoint: dmtcpsim.Config{Compress: true}})
	s.Run(func(t *dmtcpsim.Task) {
		fmt.Println("launching matlab under dmtcp_checkpoint ...")
		if _, err := s.Launch(0, apps.ProgName("matlab")); err != nil {
			panic(err)
		}
		t.Compute(500 * time.Millisecond)
		round, err := s.Checkpoint(t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("checkpointed %d process(es) in %v (%d MB compressed)\n",
			round.NumProcs, round.Stages.Total.Round(time.Millisecond), round.Bytes>>20)
		fmt.Printf("restart script:\n%s", dmtcpsim.RestartScript(round))
		s.KillAll()
		stats, err := s.Restart(t, round, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("restarted in %v (memory restore %v)\n",
			stats.Total.Round(time.Millisecond), stats.Memory.Round(time.Millisecond))
	})
}

func mpiScenario(nodes int) {
	s := dmtcpsim.New(dmtcpsim.Options{Nodes: nodes, Checkpoint: dmtcpsim.Config{Compress: true}})
	s.Run(func(t *dmtcpsim.Task) {
		np := nodes * 4
		fmt.Printf("orterun -np %d nas-lu under DMTCP ...\n", np)
		if _, err := s.Launch(0, "orterun", strconv.Itoa(np), "4", "0",
			strconv.Itoa(mpi.BasePort), "nas-lu", "5"); err != nil {
			panic(err)
		}
		t.Compute(400 * time.Millisecond)
		round, err := s.Checkpoint(t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("checkpointed %d processes (ranks + orteds + orterun) in %v\n",
			round.NumProcs, round.Stages.Total.Round(time.Millisecond))
		s.KillAll()
		if _, err := s.Restart(t, round, nil); err != nil {
			panic(err)
		}
		fmt.Println("restarted; waiting for the benchmark to verify ...")
		deadline := t.Now().Add(120 * time.Second)
		for t.Now() < deadline && !s.C.Node(0).FS.Exists("/out/nas-lu.verify") {
			t.Compute(100 * time.Millisecond)
		}
		if ino, err := s.C.Node(0).FS.ReadFile("/out/nas-lu.verify"); err == nil {
			fmt.Printf("%s\n", ino.Data)
		} else {
			fmt.Println("benchmark did not finish in time")
		}
	})
}

func migrate(nodes int) {
	s := dmtcpsim.New(dmtcpsim.Options{Nodes: nodes,
		Checkpoint: dmtcpsim.Config{Compress: true, CkptDir: "/san/ckpt"}})
	s.Run(func(t *dmtcpsim.Task) {
		np := nodes
		fmt.Printf("running a %d-rank job across the cluster ...\n", np)
		if _, err := s.Launch(0, "orterun", strconv.Itoa(np), "1", "0",
			strconv.Itoa(mpi.BasePort), "nas-ep", "10"); err != nil {
			panic(err)
		}
		t.Compute(400 * time.Millisecond)
		round, err := s.Checkpoint(t)
		if err != nil {
			panic(err)
		}
		s.KillAll()
		laptop := dmtcpsim.NodeID(nodes - 1)
		place := dmtcpsim.Placement{}
		for _, img := range round.Images {
			place[img.Host] = laptop
		}
		fmt.Printf("restarting all %d processes on node%02d (the laptop) ...\n",
			len(round.Images), laptop)
		if _, err := s.Restart(t, round, place); err != nil {
			panic(err)
		}
		t.Compute(100 * time.Millisecond)
		for _, p := range s.Sys.ManagedProcesses() {
			fmt.Printf("  %-12s now on %s\n", p.ProgName, p.Node.Hostname)
		}
	})
}

func vnc() {
	s := dmtcpsim.New(dmtcpsim.Options{Nodes: 1, Checkpoint: dmtcpsim.Config{Compress: true}})
	s.Run(func(t *dmtcpsim.Task) {
		fmt.Println("checkpointing a headless VNC session (server + twm + xterm) ...")
		if _, err := s.Launch(0, apps.ProgName("tightvnc+twm")); err != nil {
			panic(err)
		}
		t.Compute(500 * time.Millisecond)
		round, err := s.Checkpoint(t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("checkpointed %d processes in %v (%d MB)\n",
			round.NumProcs, round.Stages.Total.Round(time.Millisecond), round.Bytes>>20)
		s.KillAll()
		if _, err := s.Restart(t, round, nil); err != nil {
			panic(err)
		}
		fmt.Println("session restored; clients may reconnect")
	})
}
