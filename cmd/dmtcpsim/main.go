// Command dmtcpsim runs interactive demonstration scenarios of the
// DMTCP reproduction: launching workloads under checkpoint control,
// checkpointing them, killing everything, and restarting from images.
//
// Usage:
//
//	dmtcpsim -scenario <name> [-nodes n] [-trace out.json] [-report]
//
// Pass an unknown scenario name to print the catalog.  -trace writes
// a Chrome trace-event JSON of the whole run (virtual time; load it
// at https://ui.perfetto.dev), and -report prints the span/counter
// summary after the scenario output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	dmtcpsim "repro"
	"repro/internal/apps"
	"repro/internal/mpi"
)

// scenOpts carries the command-line knobs into a scenario.
type scenOpts struct {
	nodes  int
	tracer *dmtcpsim.Tracer
}

// options assembles per-Sim options with the shared tracer attached;
// scenarios that build several Sims call it once per Sim, which keeps
// each simulation a separate process group in the trace.
func (o scenOpts) options(nodes int, cfg dmtcpsim.Config) dmtcpsim.Options {
	return dmtcpsim.Options{Nodes: nodes, Checkpoint: cfg, Tracer: o.tracer}
}

// scenario is one registry entry; the -scenario flag help, the
// catalog listing, and the dispatch all derive from the registry, so
// adding a scenario is a one-line change.
type scenario struct {
	name string
	desc string
	run  func(scenOpts)
}

var scenarios = []scenario{
	{"quickstart", "checkpoint and restart a desktop application (matlab)", quickstart},
	{"mpi", "checkpoint an OpenMPI NAS-LU run across the cluster and restart it", mpiScenario},
	{"migrate", "checkpoint a cluster job and restart every rank on one node", migrate},
	{"vnc", "checkpoint a headless VNC session (server + twm + xterm)", vnc},
	{"store", "incremental checkpoint generations through the chunk store", storeScenario},
	{"failover", "node failure and recovery from replicated checkpoint storage", failoverScenario},
	{"coord-failover", "coordinator node failure and journaled standby takeover", coordFailoverScenario},
	{"zero-loss", "mid-round coordinator kill resumed by the standby, then replica re-fan-out", zeroLossScenario},
	{"pipeline", "parallel pipelined checkpoint writes across worker counts", pipelineScenario},
	{"restore", "streamed restore pipeline vs serial fetch-then-install", restoreScenario},
	{"lazy-restore", "post-copy restart: skeleton resume, demand faults, striped prefetch", lazyRestoreScenario},
	{"straggler", "slow loaded node: straggler scoring and the worker-hint response", stragglerScenario},
	{"chaos", "chaos schedule: leader partition, lossy links, bit rot, node death", chaosScenario},
}

func scenarioNames() string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.name
	}
	return strings.Join(names, "|")
}

func main() {
	var (
		name   = flag.String("scenario", "quickstart", "one of "+scenarioNames())
		nodes  = flag.Int("nodes", 4, "cluster size")
		trace  = flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto)")
		report = flag.Bool("report", false, "print the span/counter report after the scenario")
		cp     = flag.String("cp", "", "write the critical-path analysis as JSON (CI span-partition checks)")
	)
	flag.Parse()
	var run func(scenOpts)
	for _, s := range scenarios {
		if s.name == *name {
			run = s.run
			break
		}
	}
	if run == nil {
		fmt.Fprintf(os.Stderr, "unknown scenario %q; available:\n", *name)
		for _, s := range scenarios {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", s.name, s.desc)
		}
		os.Exit(2)
	}
	o := scenOpts{nodes: *nodes}
	if *trace != "" || *report || *cp != "" {
		o.tracer = dmtcpsim.NewTracer()
	}
	run(o)
	if *cp != "" {
		data, err := json.Marshal(dmtcpsim.AnalyzeTrace(o.tracer))
		if err == nil {
			err = os.WriteFile(*cp, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "write critical path: %v\n", err)
			os.Exit(1)
		}
	}
	if *trace != "" {
		// Draw the critical path as flow arrows before serializing.
		dmtcpsim.AnnotateFlows(o.tracer)
		if err := os.WriteFile(*trace, o.tracer.ChromeTrace(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: wrote %s (%d events, %d run(s)) — load it at https://ui.perfetto.dev\n",
			*trace, len(o.tracer.Events()), o.tracer.Runs())
	}
	if *report {
		dmtcpsim.AttachAnalyzer(o.tracer)
		fmt.Print(o.tracer.Report())
	}
}

func quickstart(o scenOpts) {
	s := dmtcpsim.New(o.options(o.nodes, dmtcpsim.Config{Compress: true}))
	s.Run(func(t *dmtcpsim.Task) {
		fmt.Println("launching matlab under dmtcp_checkpoint ...")
		if _, err := s.Launch(0, apps.ProgName("matlab")); err != nil {
			panic(err)
		}
		t.Compute(500 * time.Millisecond)
		round, err := s.Checkpoint(t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("checkpointed %d process(es) in %v (%d MB compressed)\n",
			round.NumProcs, round.Stages.Total.Round(time.Millisecond), round.Bytes>>20)
		fmt.Printf("restart script:\n%s", dmtcpsim.RestartScript(round))
		s.KillAll()
		stats, err := s.Restart(t, round, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("restarted in %v (memory restore %v)\n",
			stats.Total.Round(time.Millisecond), stats.Memory.Round(time.Millisecond))
	})
}

func mpiScenario(o scenOpts) {
	nodes := o.nodes
	s := dmtcpsim.New(o.options(nodes, dmtcpsim.Config{Compress: true}))
	s.Run(func(t *dmtcpsim.Task) {
		np := nodes * 4
		fmt.Printf("orterun -np %d nas-lu under DMTCP ...\n", np)
		if _, err := s.Launch(0, "orterun", strconv.Itoa(np), "4", "0",
			strconv.Itoa(mpi.BasePort), "nas-lu", "5"); err != nil {
			panic(err)
		}
		t.Compute(400 * time.Millisecond)
		round, err := s.Checkpoint(t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("checkpointed %d processes (ranks + orteds + orterun) in %v\n",
			round.NumProcs, round.Stages.Total.Round(time.Millisecond))
		s.KillAll()
		if _, err := s.Restart(t, round, nil); err != nil {
			panic(err)
		}
		fmt.Println("restarted; waiting for the benchmark to verify ...")
		deadline := t.Now().Add(120 * time.Second)
		for t.Now() < deadline && !s.C.Node(0).FS.Exists("/out/nas-lu.verify") {
			t.Compute(100 * time.Millisecond)
		}
		if ino, err := s.C.Node(0).FS.ReadFile("/out/nas-lu.verify"); err == nil {
			fmt.Printf("%s\n", ino.Data)
		} else {
			fmt.Println("benchmark did not finish in time")
		}
	})
}

func migrate(o scenOpts) {
	nodes := o.nodes
	s := dmtcpsim.New(o.options(nodes,
		dmtcpsim.Config{Compress: true, CkptDir: "/san/ckpt"}))
	s.Run(func(t *dmtcpsim.Task) {
		np := nodes
		fmt.Printf("running a %d-rank job across the cluster ...\n", np)
		if _, err := s.Launch(0, "orterun", strconv.Itoa(np), "1", "0",
			strconv.Itoa(mpi.BasePort), "nas-ep", "10"); err != nil {
			panic(err)
		}
		t.Compute(400 * time.Millisecond)
		round, err := s.Checkpoint(t)
		if err != nil {
			panic(err)
		}
		s.KillAll()
		laptop := dmtcpsim.NodeID(nodes - 1)
		place := dmtcpsim.Placement{}
		for _, img := range round.Images {
			place[img.Host] = laptop
		}
		fmt.Printf("restarting all %d processes on node%02d (the laptop) ...\n",
			len(round.Images), laptop)
		if _, err := s.Restart(t, round, place); err != nil {
			panic(err)
		}
		t.Compute(100 * time.Millisecond)
		for _, p := range s.Sys.ManagedProcesses() {
			fmt.Printf("  %-12s now on %s\n", p.ProgName, p.Node.Hostname)
		}
	})
}

func storeScenario(o scenOpts) {
	s := dmtcpsim.New(o.options(1,
		dmtcpsim.Config{Compress: true, Store: true, StoreKeep: 2}))
	s.Run(func(t *dmtcpsim.Task) {
		fmt.Println("launching a 256 MB process; checkpoints go through the chunk store ...")
		if _, err := s.Launch(0, dmtcpsim.DirtyAppName, "256"); err != nil {
			panic(err)
		}
		t.Compute(300 * time.Millisecond)
		for gen := 1; gen <= 4; gen++ {
			round, err := s.Checkpoint(t)
			if err != nil {
				panic(err)
			}
			img := round.Images[0]
			fmt.Printf("gen %d: write %v  new chunks %d/%d  wrote %.1f MB  dedup %.1f MB\n",
				img.Generation, round.Stages.Write.Round(time.Millisecond),
				img.NewChunks, img.Chunks,
				float64(round.Bytes)/(1<<20), float64(round.DedupBytes)/(1<<20))
			if round.GC != nil {
				fmt.Printf("       gc: %d manifests, %d live chunks, %d swept (%d pruned)\n",
					round.GC.Manifests, round.GC.Live, round.GC.Swept, round.GC.Pruned)
			}
			// Dirty 10% of the heap between generations.
			for _, p := range s.Sys.ManagedProcesses() {
				dmtcpsim.TouchHeap(p, 0.10, uint64(gen))
			}
			t.Compute(100 * time.Millisecond)
		}
		last := s.Sys.Coord.LastRound()
		s.KillAll()
		stats, err := s.Restart(t, last, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("restarted from manifest generation %d in %v\n",
			last.Images[0].Generation, stats.Total.Round(time.Millisecond))
	})
}

func failoverScenario(o scenOpts) {
	nodes := o.nodes
	if nodes < 3 {
		nodes = 3
	}
	s := dmtcpsim.New(o.options(nodes,
		dmtcpsim.Config{Compress: true, Store: true, StoreKeep: 3, ReplicaFactor: 2}))
	s.Run(func(t *dmtcpsim.Task) {
		fmt.Println("launching a 128 MB process on node01; generations replicate to 2 peers ...")
		if _, err := s.Launch(1, dmtcpsim.DirtyAppName, "128"); err != nil {
			panic(err)
		}
		t.Compute(300 * time.Millisecond)
		var prev int64
		for gen := 1; gen <= 3; gen++ {
			if _, err := s.Checkpoint(t); err != nil {
				panic(err)
			}
			s.Sys.Replica.WaitIdle(t)
			sent := s.Sys.Replica.Stats.BytesSent
			fmt.Printf("gen %d committed and replicated: %.1f MB shipped to peers\n",
				gen, float64(sent-prev)/(1<<20))
			prev = sent
			for _, p := range s.Sys.ManagedProcesses() {
				dmtcpsim.TouchHeap(p, 0.10, uint64(gen))
			}
			t.Compute(100 * time.Millisecond)
		}
		fmt.Println("killing node01 (processes, checkpoints, and chunk store all lost) ...")
		s.KillNode(1)
		rec, err := s.Recover(t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("recovered on %s from generation %d in %v (fetched %.2f MB from peers)\n",
			rec.Targets["node01"], rec.Round.Images[0].Generation,
			rec.Took.Round(time.Millisecond), float64(rec.Stats.FetchedBytes)/(1<<20))
		t.Compute(100 * time.Millisecond)
		for _, p := range s.Sys.ManagedProcesses() {
			fmt.Printf("  %-12s now on %s\n", p.ProgName, p.Node.Hostname)
		}
	})
}

func coordFailoverScenario(o scenOpts) {
	nodes := o.nodes
	if nodes < 4 {
		nodes = 4
	}
	s := dmtcpsim.New(o.options(nodes,
		dmtcpsim.Config{CoordNode: 1, Compress: true, Store: true,
			StoreKeep: 3, ReplicaFactor: 2, CoordStandbys: 1}))
	s.Run(func(t *dmtcpsim.Task) {
		fmt.Println("coordinator on node01 journals its state machine to a standby on node02 ...")
		if _, err := s.Launch(3, dmtcpsim.DirtyAppName, "128"); err != nil {
			panic(err)
		}
		t.Compute(300 * time.Millisecond)
		for gen := 1; gen <= 2; gen++ {
			round, err := s.Checkpoint(t)
			if err != nil {
				panic(err)
			}
			s.Sys.Replica.WaitIdle(t)
			fmt.Printf("gen %d checkpointed in %v under %s (journal: %d entries, %.1f KB shipped)\n",
				gen, round.Stages.Total.Round(time.Millisecond), s.Sys.Coord.Node.Hostname,
				s.Sys.Replica.Stats.JournalEntries,
				float64(s.Sys.Replica.Stats.JournalBytes)/1024)
			for _, p := range s.Sys.ManagedProcesses() {
				dmtcpsim.TouchHeap(p, 0.10, uint64(gen))
			}
			t.Compute(100 * time.Millisecond)
		}
		fmt.Println("killing node01 — the coordinator dies with its node ...")
		killAt := t.Now()
		s.KillNode(1)
		for s.Sys.Coord.Node.Down {
			t.Compute(10 * time.Millisecond)
		}
		fmt.Printf("standby on %s took over in %v (replayed %d rounds from the journal)\n",
			s.Sys.Coord.Node.Hostname, t.Now().Sub(killAt).Round(time.Millisecond),
			len(s.Sys.Coord.Rounds()))
		round, err := s.Checkpoint(t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("post-takeover checkpoint: %d process(es) in %v — the manager resynced mid-computation\n",
			round.NumProcs, round.Stages.Total.Round(time.Millisecond))
		fmt.Println("killing node03 too — data-plane recovery now runs under the promoted standby ...")
		s.Sys.Replica.WaitIdle(t)
		s.KillNode(3)
		rec, err := s.Recover(t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("recovered on %s from generation %d in %v\n",
			rec.Targets["node03"], rec.Round.Images[0].Generation,
			rec.Took.Round(time.Millisecond))
		t.Compute(100 * time.Millisecond)
		for _, p := range s.Sys.ManagedProcesses() {
			fmt.Printf("  %-12s now on %s\n", p.ProgName, p.Node.Hostname)
		}
	})
}

func zeroLossScenario(o scenOpts) {
	nodes := o.nodes
	if nodes < 5 {
		nodes = 5
	}
	s := dmtcpsim.New(o.options(nodes,
		dmtcpsim.Config{CoordNode: 1, Compress: true, Store: true,
			StoreKeep: 3, ReplicaFactor: 2, CoordStandbys: 1}))
	s.Run(func(t *dmtcpsim.Task) {
		fmt.Println("zero-loss control plane: synchronous barrier commits, mid-round takeover, replica re-fan-out ...")
		if _, err := s.Launch(3, dmtcpsim.DirtyAppName, "128"); err != nil {
			panic(err)
		}
		t.Compute(300 * time.Millisecond)
		if _, err := s.Checkpoint(t); err != nil {
			panic(err)
		}
		s.Sys.Replica.WaitIdle(t)

		// Part 1: kill the leader after the drain barrier commits; the
		// standby must resume the same round, losing none.
		co := s.Sys.Coord
		preRounds := len(co.Rounds())
		fmt.Println("requesting a checkpoint; killing the coordinator once the drain barrier has committed ...")
		var round *dmtcpsim.CkptRound
		var cerr error
		done := false
		t.P.SpawnTask("req", false, func(rt *dmtcpsim.Task) {
			round, cerr = s.Checkpoint(rt)
			done = true
		})
		killTag := int64(-1)
		for !done {
			if r := co.Mach.State().Round; r != nil && r.Released["drained"] {
				killTag = r.Tag
				break
			}
			t.Compute(time.Millisecond)
		}
		killAt := t.Now()
		s.KillNode(1)
		for s.Sys.Coord.Node.Down {
			t.Compute(10 * time.Millisecond)
		}
		fmt.Printf("standby on %s took over in %v with round tag %d mid-flight\n",
			s.Sys.Coord.Node.Hostname, t.Now().Sub(killAt).Round(time.Millisecond), killTag)
		for !done {
			t.Compute(10 * time.Millisecond)
		}
		if cerr != nil {
			panic(cerr)
		}
		lost := preRounds + 1 - len(s.Sys.Coord.Rounds())
		fmt.Printf("round resumed and completed under the standby: %d process(es), write %v\n",
			round.NumProcs, round.Stages.Write.Round(time.Millisecond))
		fmt.Printf("rounds lost on takeover: %d\n", lost)

		// Part 2: kill a replica holder; the promoted coordinator
		// detects the degraded generations and re-fans-out from
		// surviving holders until redundancy is back.
		s.Sys.Replica.WaitIdle(t)
		co = s.Sys.Coord
		st := co.Mach.State()
		victim := ""
		for _, name := range sortedKeys(st.Placement) {
			pi := st.Placement[name]
			for _, h := range pi.HolderHosts() {
				n := s.C.LookupHost(h)
				if n == nil || n.Down || h == "node00" || h == co.Node.Hostname || h == pi.Host {
					continue
				}
				victim = h
			}
		}
		if victim == "" {
			panic("no expendable replica holder found")
		}
		fmt.Printf("killing replica holder %s — background re-fan-out restores redundancy ...\n", victim)
		before := s.Sys.Replica.Stats.RepairPushes
		s.KillNode(s.C.LookupHost(victim).ID)
		for co.LastRebalance <= 0 || !co.RepairIdle() {
			t.Compute(10 * time.Millisecond)
		}
		fmt.Printf("rebalance restored %d copies in %v (QoS-paced at %.0f%% of push bandwidth)\n",
			s.Sys.Replica.Stats.RepairPushes-before, co.LastRebalance.Round(time.Millisecond),
			100*s.C.Params.RepairQoS)
		if _, err := s.Checkpoint(t); err != nil {
			panic(err)
		}
		fmt.Println("post-repair checkpoint round clean: the control plane lost nothing")
	})
}

func pipelineScenario(o scenOpts) {
	// One run per worker count: each sweeps a fresh 2-node cluster so
	// the generations line up (gen 1 cold start, gen 2 at 100% dirty).
	fmt.Println("parallel pipelined checkpoint write: 256 MB process, 100% dirty, 4-core nodes ...")
	var serial time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		s := dmtcpsim.New(o.options(2,
			dmtcpsim.Config{Compress: true, Store: true, StoreKeep: 2,
				ReplicaFactor: 1, CkptWorkers: workers}))
		s.Run(func(t *dmtcpsim.Task) {
			if _, err := s.Launch(0, dmtcpsim.DirtyAppName, "256"); err != nil {
				panic(err)
			}
			t.Compute(300 * time.Millisecond)
			if _, err := s.Checkpoint(t); err != nil {
				panic(err)
			}
			for _, p := range s.Sys.ManagedProcesses() {
				dmtcpsim.TouchHeap(p, 1.0, 1)
			}
			t.Compute(100 * time.Millisecond)
			round, err := s.Checkpoint(t)
			if err != nil {
				panic(err)
			}
			if workers == 1 {
				serial = round.Stages.Write
			}
			fmt.Printf("  %d worker(s): write %6v  speedup %.2fx  overlap %5.1f MB of %5.1f MB shipped before commit\n",
				workers, round.Stages.Write.Round(time.Millisecond),
				float64(serial)/float64(round.Stages.Write),
				float64(round.OverlapBytes)/(1<<20), float64(round.Bytes)/(1<<20))
			s.Sys.Replica.WaitIdle(t)
		})
	}
	fmt.Println("4 cores per node: 8 workers buy nothing over 4 — the core accounting is honest")
}

func restoreScenario(o scenOpts) {
	// One fresh 3-node cluster per run: the image is written on node01,
	// the restart lands on cold node00, so every chunk crosses the
	// network — the node-failure recovery / migration path.
	fmt.Println("streamed restore pipeline: remote-fetch restart of a 256 MB process, 4-core nodes ...")
	run := func(workers int, serial bool) *dmtcpsim.RestartStages {
		s := dmtcpsim.New(o.options(3,
			dmtcpsim.Config{Compress: true, Store: true, StoreKeep: 2,
				ReplicaFactor: 1, CkptWorkers: workers, SerialRestore: serial}))
		var stats *dmtcpsim.RestartStages
		s.Run(func(t *dmtcpsim.Task) {
			if _, err := s.Launch(1, dmtcpsim.DirtyAppName, "256"); err != nil {
				panic(err)
			}
			t.Compute(300 * time.Millisecond)
			round, err := s.Checkpoint(t)
			if err != nil {
				panic(err)
			}
			s.Sys.Replica.WaitIdle(t)
			s.KillAll()
			if stats, err = s.Restart(t, round, dmtcpsim.Placement{"node01": 0}); err != nil {
				panic(err)
			}
		})
		return stats
	}
	base := run(1, true)
	fmt.Printf("  fetch-then-install (old path), 1 worker: restart %7v  (fetch %v, then install)\n",
		base.Total.Round(time.Millisecond), base.Fetch.Round(time.Millisecond))
	for _, workers := range []int{1, 2, 4, 8} {
		st := run(workers, false)
		fmt.Printf("  streamed, %d worker(s): restart %7v  speedup %.2fx  (%5.1f MB of %5.1f MB installed before the fetch ended)\n",
			workers, st.Total.Round(time.Millisecond),
			float64(base.Total)/float64(st.Total),
			float64(st.OverlapBytes)/(1<<20), float64(st.FetchedBytes)/(1<<20))
	}
	fmt.Println("already-local chunks skip the network stage; recovery and migration ride the same pipeline")
}

func lazyRestoreScenario(o scenOpts) {
	// Post-copy restart of a 256 MB process on a cold node: install a
	// skeleton (manifest, files, conns, hottest chunks), resume
	// immediately, and drain the rest in the background — striped
	// across every placement-verified complete holder, hottest first,
	// with first-touch demand faults preempting the prefetch queue.
	// Uncompressed images: post-copy cannot afford gunzip on the
	// demand-fault path.
	fmt.Println("lazy post-copy restore: 256 MB process, checkpoint replicated to 3 holders ...")
	run := func(lazy bool, holders int) *dmtcpsim.RestartStages {
		cfg := dmtcpsim.Config{Compress: false, Store: true, StoreKeep: 2,
			ReplicaFactor: 3, CkptWorkers: 4, LazyRestore: lazy, LazyHolders: holders}
		s := dmtcpsim.New(o.options(5, cfg))
		var stats *dmtcpsim.RestartStages
		s.Run(func(t *dmtcpsim.Task) {
			if _, err := s.Launch(1, dmtcpsim.LazyAppName, "256"); err != nil {
				panic(err)
			}
			t.Compute(300 * time.Millisecond)
			round, err := s.Checkpoint(t)
			if err != nil {
				panic(err)
			}
			s.Sys.Replica.WaitIdle(t)
			s.KillAll()
			if stats, err = s.Restart(t, round, dmtcpsim.Placement{"node01": 0}); err != nil {
				panic(err)
			}
		})
		return stats
	}
	full := run(false, 0)
	fmt.Printf("  full install (streamed):  resumed after %7v  (%5.1f MB fetched before resume)\n",
		full.Total.Round(time.Millisecond), float64(full.FetchedBytes)/(1<<20))
	single := run(true, 1)
	fmt.Printf("  lazy, 1 holder:           resumed after %7v  drain %7v  (%d demand faults, %5.1f MB on-demand)\n",
		single.ResumePause.Round(time.Millisecond), single.PrefetchDrain.Round(time.Millisecond),
		single.DemandFaults, float64(single.DemandBytes)/(1<<20))
	striped := run(true, 0)
	fmt.Printf("  lazy, striped x4 holders: resumed after %7v  drain %7v  (%d demand faults, %5.1f MB on-demand)\n",
		striped.ResumePause.Round(time.Millisecond), striped.PrefetchDrain.Round(time.Millisecond),
		striped.DemandFaults, float64(striped.DemandBytes)/(1<<20))
	fmt.Printf("resume pause %.1f%% of full-install MTTR; striped drain %.2fx faster than one holder\n",
		100*float64(striped.ResumePause)/float64(full.Total),
		float64(single.PrefetchDrain)/float64(striped.PrefetchDrain))
}

func stragglerScenario(o scenOpts) {
	// node01 runs at 1/3 speed under three background burners; the
	// health plane's heartbeats give the coordinator its core count, the
	// first round's per-host write times score it a straggler, and the
	// next round's checkpoint frame carries a worker hint that floors
	// its adaptive pool at the full core count.  The control run
	// disables the health plane (HeartbeatInterval=0): no registry, no
	// hints, the loaded straggler keeps its 1-worker adaptive pool.
	run := func(response bool) (r1, r2 *dmtcpsim.CkptRound) {
		s := dmtcpsim.New(o.options(3,
			dmtcpsim.Config{Compress: true, Store: true, StoreKeep: 2, ReplicaFactor: 1}))
		if !response {
			s.C.Params.HeartbeatInterval = 0
		}
		s.SlowNode("node01", 3)
		s.Register("burner", dmtcpsim.ProgramFunc(func(t *dmtcpsim.Task, _ []string) {
			for {
				t.Compute(2 * time.Millisecond)
			}
		}))
		s.Run(func(t *dmtcpsim.Task) {
			for n := 0; n < 3; n++ {
				if _, err := s.Launch(dmtcpsim.NodeID(n), dmtcpsim.DirtyAppName, "96"); err != nil {
					panic(err)
				}
			}
			for i := 0; i < 3; i++ {
				if _, err := s.C.Node(1).Kern.Spawn("burner", nil, nil); err != nil {
					panic(err)
				}
			}
			t.Compute(300 * time.Millisecond)
			// Touch every chunk once so each process's heap carries its
			// own write versions: untouched chunks hash under a shared
			// scope and would dedup against replica copies of the other
			// nodes' identical heaps, hiding the straggler's write cost.
			for _, p := range s.Sys.ManagedProcesses() {
				dmtcpsim.TouchHeap(p, 1.0, 1)
			}
			t.Compute(100 * time.Millisecond)
			var err error
			if r1, err = s.Checkpoint(t); err != nil {
				panic(err)
			}
			s.Sys.Replica.WaitIdle(t)
			for _, p := range s.Sys.ManagedProcesses() {
				dmtcpsim.TouchHeap(p, 1.0, 2)
			}
			t.Compute(100 * time.Millisecond)
			if r2, err = s.Checkpoint(t); err != nil {
				panic(err)
			}
			s.Sys.Replica.WaitIdle(t)
		})
		return r1, r2
	}
	fmt.Println("straggler: node01 at 1/3 speed under background load; 3x 96 MB processes, adaptive worker pools ...")
	r1, r2 := run(true)
	fmt.Println("  with the health plane (heartbeat -> straggler score -> next-round worker hint):")
	scores := r1.StragglerScores()
	for _, h := range sortedKeys(r1.WriteByHost) {
		mark := ""
		if scores[h] >= dmtcpsim.StragglerThreshold {
			mark = "  <- straggler"
		}
		fmt.Printf("    round 1 write %-7s %8v  score %.2f%s\n",
			h, r1.WriteByHost[h].Round(time.Millisecond), scores[h], mark)
	}
	for _, h := range sortedKeys(r1.WorkerHints) {
		fmt.Printf("    next-round hint: %s -> %d workers\n", h, r1.WorkerHints[h])
	}
	fmt.Printf("    round 2 write: %v\n", r2.Stages.Write.Round(time.Millisecond))
	_, b2 := run(false)
	fmt.Printf("  without it (HeartbeatInterval=0): round 2 write %v\n",
		b2.Stages.Write.Round(time.Millisecond))
	fmt.Printf("  the hint bought %.2fx on the straggler-bound round\n",
		float64(b2.Stages.Write)/float64(r2.Stages.Write))
}

// sortedKeys returns a map's keys in order, for stable output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func vnc(o scenOpts) {
	s := dmtcpsim.New(o.options(1, dmtcpsim.Config{Compress: true}))
	s.Run(func(t *dmtcpsim.Task) {
		fmt.Println("checkpointing a headless VNC session (server + twm + xterm) ...")
		if _, err := s.Launch(0, apps.ProgName("tightvnc+twm")); err != nil {
			panic(err)
		}
		t.Compute(500 * time.Millisecond)
		round, err := s.Checkpoint(t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("checkpointed %d processes in %v (%d MB)\n",
			round.NumProcs, round.Stages.Total.Round(time.Millisecond), round.Bytes>>20)
		s.KillAll()
		if _, err := s.Restart(t, round, nil); err != nil {
			panic(err)
		}
		fmt.Println("session restored; clients may reconnect")
	})
}
