package main

import (
	"fmt"
	"math/rand"
	"time"

	dmtcpsim "repro"
	"repro/internal/store"
)

// chaosScenario walks one full chaos schedule — the four fault kinds
// the fault-injection plane models — against an HA deployment, and
// narrates what the robustness machinery does about each: a
// leader-isolating partition (standby promotes via journal-silence
// detection, resumes the round, the heal converges the deposed leader),
// lossy slow links (a round still commits through retransmission
// backoff), silent bit rot (the background scrubber detects and
// quarantines it, repair re-sources the generation), and node death
// (recovery restarts the workload from replicated storage).
func chaosScenario(o scenOpts) {
	nodes := o.nodes
	if nodes < 6 {
		nodes = 6
	}
	s := dmtcpsim.New(o.options(nodes,
		dmtcpsim.Config{CoordNode: 1, Compress: true, Store: true,
			StoreKeep: 3, ReplicaFactor: 2, CoordStandbys: 2}))
	s.C.Params.ScrubInterval = 200 * time.Millisecond
	s.Run(func(t *dmtcpsim.Task) {
		fmt.Println("chaos schedule: leader partition, lossy links, bit rot, node death ...")
		if _, err := s.Launch(4, dmtcpsim.DirtyAppName, "96"); err != nil {
			panic(err)
		}
		t.Compute(300 * time.Millisecond)
		if _, err := s.Checkpoint(t); err != nil {
			panic(err)
		}
		s.Sys.Replica.WaitIdle(t)

		// Fault 1: cut the leader's host off mid-round.  Its node stays
		// alive, so only the standbys' journal-silence watchdog can
		// detect the loss and elect on the majority side.
		co := s.Sys.Coord
		preRounds := len(co.Rounds())
		fmt.Printf("\n[1/4] partitioning leader %s away mid-round ...\n", co.Node.Hostname)
		var cerr error
		done := false
		t.P.SpawnTask("req", false, func(rt *dmtcpsim.Task) {
			_, cerr = s.Checkpoint(rt)
			done = true
		})
		for !done && co.Mach.State().Round == nil {
			t.Compute(time.Millisecond)
		}
		cutAt := t.Now()
		id := s.C.IsolateHost(co.Node.Hostname)
		for s.Sys.Coord == co && !done {
			t.Compute(5 * time.Millisecond)
		}
		fmt.Printf("      standby on %s promoted itself in %v (journal silence; the leader is alive but unreachable)\n",
			s.Sys.Coord.Node.Hostname, t.Now().Sub(cutAt).Round(time.Millisecond))
		s.C.HealFault(id)
		for !done {
			t.Compute(10 * time.Millisecond)
		}
		if cerr != nil {
			panic(cerr)
		}
		fmt.Printf("      round resumed and completed under the new leader; rounds lost: %d\n",
			preRounds+1-len(s.Sys.Coord.Rounds()))
		lead := s.Sys.Coord
		for !co.Standby || co.Mach.Epoch() != lead.Mach.Epoch() {
			t.Compute(10 * time.Millisecond)
		}
		fmt.Printf("      deposed leader stepped down and converged onto epoch %d (%d fenced journal writes rejected)\n",
			lead.Mach.Epoch(), s.Sys.Replica.Stats.FencedWrites)
		s.Sys.Replica.WaitIdle(t)

		// Fault 2: every link drops and delays frames; TCP-style
		// retransmission backoff delays the round but loses nothing.
		fmt.Println("[2/4] making every link lossy (3% drop, +500us latency) and checkpointing through it ...")
		id = s.C.InjectFault(dmtcpsim.FaultRule{
			Drop: 0.03, ExtraLatency: 500 * time.Microsecond, JitterPct: 0.3})
		round, err := s.Checkpoint(t)
		s.C.HealFault(id)
		if err != nil {
			panic(err)
		}
		fmt.Printf("      round committed in %v across the flaky network\n",
			round.Stages.Total.Round(time.Millisecond))
		s.Sys.Replica.WaitIdle(t)

		// Fault 3: flip one bit in a replica holder's chunk store.  No
		// reader ever touches it — the background scrubber must find it.
		co = s.Sys.Coord
		st := co.Mach.State()
		victim := ""
		for _, name := range sortedKeys(st.Placement) {
			pi := st.Placement[name]
			for _, h := range pi.HolderHosts() {
				n := s.C.LookupHost(h)
				if n == nil || n.Down || h == "node00" || h == co.Node.Hostname || h == pi.Host {
					continue
				}
				victim = h
			}
		}
		if victim == "" {
			panic("no expendable replica holder found")
		}
		hstore := store.Open(s.C.LookupHost(victim), store.Config{Root: s.Sys.StoreRoot()})
		hash, ok := hstore.CorruptRandomChunk(rand.New(rand.NewSource(1)))
		if !ok {
			panic("nothing to corrupt on " + victim)
		}
		fmt.Printf("[3/4] flipped one bit in chunk %s on %s; waiting for the scrubber ...\n", hash[:12], victim)
		pre := s.Sys.Replica.Stats.ScrubCorrupt
		flipAt := t.Now()
		for s.Sys.Replica.Stats.ScrubCorrupt == pre {
			t.Compute(20 * time.Millisecond)
		}
		fmt.Printf("      scrub detected and quarantined it in %v (no reader involved)\n",
			t.Now().Sub(flipAt).Round(time.Millisecond))
		t.Compute(100 * time.Millisecond)
		for !co.RepairIdle() {
			t.Compute(20 * time.Millisecond)
		}
		fmt.Printf("      repair re-sourced the generation from a clean holder (%d quarantined object(s) on %s)\n",
			len(hstore.Quarantined()), victim)

		// Fault 4: the workload's node loses power; recovery rolls back
		// to the newest fully-replicated round on a surviving holder.
		procs := s.Sys.ManagedProcesses()
		if len(procs) == 0 {
			panic("workload lost before the node-death fault")
		}
		deadNode := procs[0].Node
		fmt.Printf("[4/4] killing workload node %s ...\n", deadNode.Hostname)
		s.KillNode(deadNode.ID)
		rec, err := s.Sys.Recover(t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("      recovered %d process(es) on %v in %v (MTTR: detect + rollback + fetch + restart)\n",
			rec.Procs, rec.Targets[deadNode.Hostname], rec.Took.Round(time.Millisecond))

		// Closing round: the cluster must be fully functional again.
		t.Compute(100 * time.Millisecond)
		if _, err := s.Checkpoint(t); err != nil {
			panic(err)
		}
		fmt.Println("\nclosing checkpoint round clean: the schedule survived with zero rounds lost")
	})
}
