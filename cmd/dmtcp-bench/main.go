// Command dmtcp-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	dmtcp-bench [-run id] [-trials n] [-quick] [-list] [-json]
//	            [-trace out.json] [-report]
//
// Experiment ids: fig3, fig4, fig5a, fig5b, fig6, table1, runcms,
// sync, forked, barrier, dejavu, store, failover, coordha, pipeline,
// restore, restorelazy, chaos, all (default).
//
// -json, -trace, and -report all enable tracing: every trial's spans
// are recorded in virtual time.  With -json each experiment's table
// embeds a critical_path block (the analyzer's blocking-chain summary
// over that experiment's rounds and restarts); -trace writes a Chrome
// trace-event file with the critical path drawn as flow arrows, and
// -report prints the span/counter/critical-path summary at the end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	dmtcpsim "repro"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment id (or comma list)")
		trials = flag.Int("trials", 5, "trials per configuration (paper: 10)")
		quick  = flag.Bool("quick", false, "reduced scale for smoke runs")
		seed   = flag.Int64("seed", 1, "base random seed")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		asJSON = flag.Bool("json", false, "emit results as a JSON array of tables (with critical_path blocks)")
		trace  = flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto)")
		report = flag.Bool("report", false, "print the span/counter/critical-path report at the end")
	)
	flag.Parse()

	o := dmtcpsim.Opts{Trials: *trials, Seed: *seed, Quick: *quick}
	type exp struct {
		id, desc string
		fn       func() *dmtcpsim.Table
	}
	exps := []exp{
		{"fig3", "desktop apps ckpt/restart/size (Fig. 3)", func() *dmtcpsim.Table { return dmtcpsim.RunFig3(o) }},
		{"runcms", "runCMS anecdote (§5.1)", func() *dmtcpsim.Table { return dmtcpsim.RunRunCMS(o) }},
		{"fig4", "distributed apps, 32 nodes (Fig. 4)", func() *dmtcpsim.Table { return dmtcpsim.RunFig4(o) }},
		{"fig5a", "ParGeant4 scaling, local disk (Fig. 5a)", func() *dmtcpsim.Table { return dmtcpsim.RunFig5(o, false) }},
		{"fig5b", "ParGeant4 scaling, SAN/NFS (Fig. 5b)", func() *dmtcpsim.Table { return dmtcpsim.RunFig5(o, true) }},
		{"fig6", "memory sweep (Fig. 6)", func() *dmtcpsim.Table { return dmtcpsim.RunFig6(o) }},
		{"table1", "stage breakdown (Table 1)", func() *dmtcpsim.Table { return dmtcpsim.RunTable1(o) }},
		{"sync", "sync-after-checkpoint cost (§5.2)", func() *dmtcpsim.Table { return dmtcpsim.RunSyncCost(o) }},
		{"forked", "forked checkpointing (§5.3)", func() *dmtcpsim.Table { return dmtcpsim.RunForked(o) }},
		{"barrier", "coordinator scalability (§5.4)", func() *dmtcpsim.Table { return dmtcpsim.RunBarrier(o) }},
		{"dejavu", "DejaVu overhead comparison (§2)", func() *dmtcpsim.Table { return dmtcpsim.RunDejaVu(o) }},
		{"store", "incremental chunk store vs full rewrite", func() *dmtcpsim.Table { return dmtcpsim.RunStore(o) }},
		{"failover", "replicated storage + node-failure recovery", func() *dmtcpsim.Table { return dmtcpsim.RunFailover(o) }},
		{"coordha", "coordinator HA: journaled state machine + standby takeover", func() *dmtcpsim.Table { return dmtcpsim.RunCoordFailover(o) }},
		{"pipeline", "parallel pipelined checkpoint write (workers x dirty%)", func() *dmtcpsim.Table { return dmtcpsim.RunPipeline(o) }},
		{"restore", "streamed restore pipeline (remote-fetch restart x workers)", func() *dmtcpsim.Table { return dmtcpsim.RunRestore(o) }},
		{"restorelazy", "lazy post-copy restore (skeleton resume + striped prefetch x size)", func() *dmtcpsim.Table { return dmtcpsim.RunRestoreLazy(o) }},
		{"chaos", "chaos schedules: partitions, lossy links, bit rot, node death", func() *dmtcpsim.Table { return dmtcpsim.RunChaos(o) }},
	}
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.id, e.desc)
		}
		return
	}
	var tracer *dmtcpsim.Tracer
	if *asJSON || *trace != "" || *report {
		tracer = dmtcpsim.NewTracer()
		dmtcpsim.TraceExperiments(tracer)
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	ran := 0
	var tables []*dmtcpsim.Table
	for _, e := range exps {
		if !want["all"] && !want[e.id] {
			continue
		}
		start := time.Now()
		// An untouched tracer's first Env stays on run 0; afterwards
		// every Env gets a fresh run number, so Runs() marks where this
		// experiment's trials begin.
		lo := 0
		if tracer != nil && len(tracer.Events()) > 0 {
			lo = tracer.Runs()
		}
		tab := e.fn()
		if tracer != nil {
			tab.CriticalPath = criticalPathSince(tracer, lo)
		}
		if *asJSON {
			tables = append(tables, tab)
			fmt.Fprintf(os.Stderr, "(%s regenerated in %v wall time)\n", e.id, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Println(tab.Render())
			fmt.Printf("(%s regenerated in %v wall time)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}
	if *trace != "" {
		dmtcpsim.AnnotateFlows(tracer)
		if err := os.WriteFile(*trace, tracer.ChromeTrace(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s (%d events, %d run(s))\n",
			*trace, len(tracer.Events()), tracer.Runs())
	}
	if *report {
		dmtcpsim.AttachAnalyzer(tracer)
		fmt.Fprint(os.Stderr, tracer.Report())
	}
}

// criticalPathSince analyzes the whole trace and keeps only the rounds
// and restarts recorded in run lo or later — i.e. the trials of the
// experiment that just ran (each Env is one tracer run).
func criticalPathSince(tr *dmtcpsim.Tracer, lo int) *dmtcpsim.CriticalPath {
	full := dmtcpsim.AnalyzeTrace(tr)
	out := &dmtcpsim.CriticalPath{}
	for _, r := range full.Rounds {
		if r.Run >= lo {
			out.Rounds = append(out.Rounds, r)
		}
	}
	for _, r := range full.Restarts {
		if r.Run >= lo {
			out.Restarts = append(out.Restarts, r)
		}
	}
	if len(out.Rounds) == 0 && len(out.Restarts) == 0 {
		return nil
	}
	return out
}
