package dmtcpsim

// Regression guards over the committed benchmark artifacts.  CI runs
// these with the ordinary test suite, so a change that silently
// regresses the committed pipeline numbers — or regenerates them with
// a regression baked in — fails the build.

import (
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/model"
)

// loadBenchTable reads one committed BENCH_*.json artifact.
func loadBenchTable(t *testing.T, path, id string) *Table {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing committed artifact %s: %v", path, err)
	}
	var tables []*Table
	if err := json.Unmarshal(data, &tables); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	for _, tab := range tables {
		if tab.ID == id {
			return tab
		}
	}
	t.Fatalf("%s holds no table %q", path, id)
	return nil
}

// col returns the index of a named column.
func col(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, c := range tab.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("table %s has no column %q", tab.ID, name)
	return -1
}

// ratio parses a "3.96x" cell.
func ratio(t *testing.T, cell string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(cell), "x"), 64)
	if err != nil {
		t.Fatalf("bad ratio cell %q: %v", cell, err)
	}
	return f
}

// mean parses the leading mean out of a "0.220 ±0.004" cell.
func mean(t *testing.T, cell string) float64 {
	t.Helper()
	first, _, _ := strings.Cut(strings.TrimSpace(cell), " ")
	f, err := strconv.ParseFloat(first, 64)
	if err != nil {
		t.Fatalf("bad mean±std cell %q: %v", cell, err)
	}
	return f
}

// TestBenchRestoreGuard pins the committed BENCH_restore.json
// acceptance floor:
//
//   - streaming may never lose to the serial fetch-then-install
//     baseline (speedup >= 1.0 at every worker count, and >= 1.0
//     against the same-worker-count serial column);
//   - the 4-worker streamed remote-fetch restart is >= 2x the 1-worker
//     fetch-then-install path (the headline acceptance criterion);
//   - 8 workers on 4 cores show no real further speedup over 4.
func TestBenchRestoreGuard(t *testing.T) {
	tab := loadBenchTable(t, "BENCH_restore.json", "restore")
	cWorkers := col(t, tab, "workers")
	cSpeedup := col(t, tab, "speedup")
	cVsFI := col(t, tab, "vs f+i")

	speedups := map[string]float64{}
	for _, row := range tab.Rows {
		sp := ratio(t, row[cSpeedup])
		if sp < 1.0 {
			t.Errorf("workers %s: streamed speedup %.2f < 1.0", row[cWorkers], sp)
		}
		if vf := ratio(t, row[cVsFI]); vf < 1.0 {
			t.Errorf("workers %s: streamed %.2fx vs same-width fetch-then-install, want >= 1.0",
				row[cWorkers], vf)
		}
		speedups[row[cWorkers]] = sp
	}
	if speedups["4"] == 0 {
		t.Fatal("no 4-worker row committed")
	}
	if speedups["4"] < 2.0 {
		t.Errorf("4-worker streamed restart %.2fx vs 1-worker fetch-then-install, want >= 2x", speedups["4"])
	}
	if w8 := speedups["8"]; w8 != 0 && w8 > speedups["4"]*1.10 {
		t.Errorf("8 workers on 4 cores sped up %.2fx over 4 workers' %.2fx: core accounting leak",
			w8, speedups["4"])
	}
}

// TestBenchPipelineGuard pins the committed BENCH_pipeline.json
// acceptance floor:
//
//   - no speedup cell may regress below 1.0 (more workers can never be
//     slower than the serial path);
//   - the 4-worker 100%-dirty checkpoint is >= 2.5x the serial path;
//   - 100%-dirty incremental is >= 1.0x the full rewrite at every
//     worker count (the old serial path was 0.9x — slower);
//   - 8 workers on 4 cores show no real further speedup over 4 (the
//     core accounting is honest; a few percent of extra compute/IO
//     overlap is the tolerance).
func TestBenchPipelineGuard(t *testing.T) {
	tab := loadBenchTable(t, "BENCH_pipeline.json", "pipeline")
	cDirty := col(t, tab, "dirty %")
	cWorkers := col(t, tab, "workers")
	cSpeedup := col(t, tab, "speedup")
	cVsFull := col(t, tab, "vs full")

	speedups := map[string]map[string]float64{} // dirty → workers → speedup
	for _, row := range tab.Rows {
		sp := ratio(t, row[cSpeedup])
		if sp < 1.0 {
			t.Errorf("dirty %s%% workers %s: speedup %.2f < 1.0", row[cDirty], row[cWorkers], sp)
		}
		if row[cDirty] == "100" {
			if vf := ratio(t, row[cVsFull]); vf < 1.0 {
				t.Errorf("dirty 100%% workers %s: incremental %.2fx vs full rewrite, want >= 1.0",
					row[cWorkers], vf)
			}
		}
		if speedups[row[cDirty]] == nil {
			speedups[row[cDirty]] = map[string]float64{}
		}
		speedups[row[cDirty]][row[cWorkers]] = sp
	}
	d100 := speedups["100"]
	if d100 == nil || d100["4"] == 0 {
		t.Fatal("no 100 percent dirty 4-worker row committed")
	}
	if d100["4"] < 2.5 {
		t.Errorf("4-worker 100%%-dirty speedup %.2fx, want >= 2.5x", d100["4"])
	}
	if w8 := d100["8"]; w8 != 0 && w8 > d100["4"]*1.10 {
		t.Errorf("8 workers on 4 cores sped up %.2fx over 4 workers' %.2fx: core accounting leak",
			w8, d100["4"])
	}

	// Straggler response: the health plane's worker hint must beat the
	// no-telemetry baseline on the slow-node round by a clear margin.
	slow := speedups["slow3x"]
	if slow == nil || slow["auto+hint"] == 0 {
		t.Fatal("no slow3x auto+hint row committed")
	}
	if slow["auto+hint"] < 1.5 {
		t.Errorf("slow3x auto+hint speedup %.2fx over the no-telemetry baseline, want >= 1.5x",
			slow["auto+hint"])
	}
	base, hint := tab.Metrics["straggler.base_write_s"], tab.Metrics["straggler.hint_write_s"]
	if base == 0 || hint == 0 {
		t.Fatal("straggler metrics missing from committed artifact")
	}
	if hint >= base {
		t.Errorf("straggler hint write %.3fs >= baseline %.3fs: response path bought nothing", hint, base)
	}
}

// TestBenchRestoreLazyGuard pins the committed lazy post-copy curve in
// BENCH_restore.json:
//
//   - the resume pause is near-constant in image size: the largest
//     image's pause is <= 1.5x the smallest's, while the full-install
//     MTTR keeps scaling with the image;
//   - at 256 MB the skeleton resume costs <= 10% of the full-install
//     restart (the headline acceptance criterion);
//   - the drain striped across all four complete holders beats the
//     single-holder pull by >= 1.8x at every size.
func TestBenchRestoreLazyGuard(t *testing.T) {
	tab := loadBenchTable(t, "BENCH_restore.json", "restore_lazy")
	cMB := col(t, tab, "image MB")
	cFull := col(t, tab, "streamed MTTR (s)")
	cPause := col(t, tab, "resume pause (s)")
	cStripe := col(t, tab, "stripe speedup")

	if len(tab.Rows) < 2 {
		t.Fatalf("restore_lazy table has %d rows, want a size sweep", len(tab.Rows))
	}
	var pauses, fulls []float64
	for _, row := range tab.Rows {
		if sp := ratio(t, row[cStripe]); sp < 1.8 {
			t.Errorf("%s MB: striped drain %.2fx vs single holder, want >= 1.8x", row[cMB], sp)
		}
		pauses = append(pauses, mean(t, row[cPause]))
		fulls = append(fulls, mean(t, row[cFull]))
	}
	first, last := pauses[0], pauses[len(pauses)-1]
	if first <= 0 || last > first*1.5 {
		t.Errorf("resume pause grew %.3fs -> %.3fs across the size sweep, want <= 1.5x", first, last)
	}
	if fulls[len(fulls)-1] < fulls[0]*2 {
		t.Errorf("full-install MTTR %.3fs -> %.3fs does not scale with image size: lazy has nothing to buy",
			fulls[0], fulls[len(fulls)-1])
	}
	saw256 := false
	for i, row := range tab.Rows {
		if row[cMB] != "256" {
			continue
		}
		saw256 = true
		if frac := pauses[i] / fulls[i]; frac > 0.10 {
			t.Errorf("256 MB resume pause %.3fs is %.1f%% of the %.3fs full-install MTTR, want <= 10%%",
				pauses[i], frac*100, fulls[i])
		}
	}
	if !saw256 {
		t.Error("no 256 MB row committed; the <=10%% pause criterion is unverified")
	}
	if g := tab.Metrics["lazy.pause_growth"]; g == 0 || g > 1.5 {
		t.Errorf("lazy.pause_growth metric = %v, want in (0, 1.5]", g)
	}
}

// TestBenchChaosGuard pins the committed BENCH_chaos.json robustness
// claims:
//
//   - every injected fault recovered and every whole schedule survived
//     (all "recovered" cells are N/N);
//   - a leader-isolating partition loses zero checkpoint rounds — the
//     promoted standby resumes the in-flight round every time;
//   - the scrubber detected every bit flip without a reader touching
//     the data, with a measured, positive detection latency;
//   - node death recovered with a measured, positive MTTR, and the
//     leader takeover under partition completed inside the static
//     detection + election budget.
func TestBenchChaosGuard(t *testing.T) {
	tab := loadBenchTable(t, "BENCH_chaos.json", "chaos")
	cFault := col(t, tab, "fault")
	cRecovered := col(t, tab, "recovered")
	cLatency := col(t, tab, "latency (s)")

	for _, row := range tab.Rows {
		if num, den, ok := strings.Cut(row[cRecovered], "/"); !ok || num != den {
			t.Errorf("%s: recovered %q, want all injections recovered", row[cFault], row[cRecovered])
		}
		switch row[cFault] {
		case "partition leader":
			p := model.Default()
			budget := (p.FailureDetectDelay + p.ElectionTimeout).Seconds()
			if take := mean(t, row[cLatency]); take <= 0 || take >= budget {
				t.Errorf("leader takeover under partition %.3fs, want in (0, %.3fs) (detect+election budget)",
					take, budget)
			}
		case "bit rot":
			if d := mean(t, row[cLatency]); d <= 0 {
				t.Errorf("scrub detection latency %.3fs, want > 0 (never measured)", d)
			}
		case "node death":
			if mttr := mean(t, row[cLatency]); mttr <= 0 {
				t.Errorf("MTTR %.3fs, want > 0 (never measured)", mttr)
			}
		}
	}
	if tr := tab.Metrics["chaos.trials"]; tr <= 0 {
		t.Fatalf("chaos.trials metric = %v, want > 0", tr)
	}
	if s, tr := tab.Metrics["chaos.survived"], tab.Metrics["chaos.trials"]; s != tr {
		t.Errorf("chaos.survived metric = %v, want every trial (%v)", s, tr)
	}
	if rl := tab.Metrics["chaos.rounds_lost"]; rl != 0 {
		t.Errorf("chaos.rounds_lost metric = %v, want 0", rl)
	}
	if d := tab.Metrics["chaos.scrub_detect_s"]; d <= 0 {
		t.Errorf("chaos.scrub_detect_s metric = %v, want > 0", d)
	}
	if m := tab.Metrics["chaos.mttr_s"]; m <= 0 {
		t.Errorf("chaos.mttr_s metric = %v, want > 0", m)
	}
}

// TestBenchCoordHAGuard pins the committed BENCH_coordha.json adaptive
// failure-detector claims:
//
//   - adaptive takeover beats the static path on every row, and on a
//     quiet network it completes strictly inside the static budget of
//     FailureDetectDelay + ElectionTimeout;
//   - the loaded-network probe recorded zero false-positive takeovers
//     (the phi deadline only ever widens under load);
//   - every trial's workload survived the takeover.
//
// It also pins the zero-loss control-plane claims:
//
//   - a mid-round coordinator kill loses zero rounds — the promoted
//     standby resumes and completes the in-flight round in every trial;
//   - replica re-fan-out after a holder death completes with a
//     measured, positive rebalance time;
//   - a checkpoint round taken while the QoS-paced repair is shipping
//     costs at most 10% more than the undisturbed baseline.
func TestBenchCoordHAGuard(t *testing.T) {
	tab := loadBenchTable(t, "BENCH_coordha.json", "coordha")
	cTake := col(t, tab, "takeover (s)")
	cStatic := col(t, tab, "static takeover (s)")
	cFalse := col(t, tab, "false+ (loaded)")
	cLost := col(t, tab, "rounds lost")
	cRebal := col(t, tab, "rebalance (s)")
	cSurvived := col(t, tab, "survived")

	p := model.Default()
	budget := (p.FailureDetectDelay + p.ElectionTimeout).Seconds()
	for _, row := range tab.Rows {
		adaptive, static := mean(t, row[cTake]), mean(t, row[cStatic])
		if adaptive >= static {
			t.Errorf("standbys %s: adaptive takeover %.3fs >= static %.3fs", row[0], adaptive, static)
		}
		if adaptive >= budget {
			t.Errorf("standbys %s: adaptive takeover %.3fs >= static budget %.3fs (detect+election)",
				row[0], adaptive, budget)
		}
		if num, _, ok := strings.Cut(row[cFalse], "/"); !ok || num != "0" {
			t.Errorf("standbys %s: false-positive takeovers %q under load, want 0/N", row[0], row[cFalse])
		}
		if num, _, ok := strings.Cut(row[cLost], "/"); !ok || num != "0" {
			t.Errorf("standbys %s: rounds lost on takeover %q, want 0/N", row[0], row[cLost])
		}
		if rb := mean(t, row[cRebal]); rb <= 0 {
			t.Errorf("standbys %s: rebalance time %.3fs, want > 0 (re-fan-out never measured)", row[0], rb)
		}
		if num, den, ok := strings.Cut(row[cSurvived], "/"); !ok || num != den {
			t.Errorf("standbys %s: survived %q, want all trials", row[0], row[cSurvived])
		}
	}
	if fp := tab.Metrics["coordha.false_takeovers"]; fp != 0 {
		t.Errorf("coordha.false_takeovers metric = %v, want 0", fp)
	}
	if rl := tab.Metrics["coordha.rounds_lost"]; rl != 0 {
		t.Errorf("coordha.rounds_lost metric = %v, want 0", rl)
	}
	if rb := tab.Metrics["coordha.rebalance_s"]; rb <= 0 {
		t.Errorf("coordha.rebalance_s metric = %v, want > 0", rb)
	}
	if ratio := tab.Metrics["coordha.repair_ckpt_ratio"]; ratio <= 0 || ratio > 1.10 {
		t.Errorf("coordha.repair_ckpt_ratio metric = %v, want in (0, 1.10]: repair pacing must not cost a concurrent round more than 10%%", ratio)
	}
}
