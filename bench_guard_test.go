package dmtcpsim

// Regression guards over the committed benchmark artifacts.  CI runs
// these with the ordinary test suite, so a change that silently
// regresses the committed pipeline numbers — or regenerates them with
// a regression baked in — fails the build.

import (
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"
)

// loadBenchTable reads one committed BENCH_*.json artifact.
func loadBenchTable(t *testing.T, path, id string) *Table {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing committed artifact %s: %v", path, err)
	}
	var tables []*Table
	if err := json.Unmarshal(data, &tables); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	for _, tab := range tables {
		if tab.ID == id {
			return tab
		}
	}
	t.Fatalf("%s holds no table %q", path, id)
	return nil
}

// col returns the index of a named column.
func col(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, c := range tab.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("table %s has no column %q", tab.ID, name)
	return -1
}

// ratio parses a "3.96x" cell.
func ratio(t *testing.T, cell string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(cell), "x"), 64)
	if err != nil {
		t.Fatalf("bad ratio cell %q: %v", cell, err)
	}
	return f
}

// TestBenchRestoreGuard pins the committed BENCH_restore.json
// acceptance floor:
//
//   - streaming may never lose to the serial fetch-then-install
//     baseline (speedup >= 1.0 at every worker count, and >= 1.0
//     against the same-worker-count serial column);
//   - the 4-worker streamed remote-fetch restart is >= 2x the 1-worker
//     fetch-then-install path (the headline acceptance criterion);
//   - 8 workers on 4 cores show no real further speedup over 4.
func TestBenchRestoreGuard(t *testing.T) {
	tab := loadBenchTable(t, "BENCH_restore.json", "restore")
	cWorkers := col(t, tab, "workers")
	cSpeedup := col(t, tab, "speedup")
	cVsFI := col(t, tab, "vs f+i")

	speedups := map[string]float64{}
	for _, row := range tab.Rows {
		sp := ratio(t, row[cSpeedup])
		if sp < 1.0 {
			t.Errorf("workers %s: streamed speedup %.2f < 1.0", row[cWorkers], sp)
		}
		if vf := ratio(t, row[cVsFI]); vf < 1.0 {
			t.Errorf("workers %s: streamed %.2fx vs same-width fetch-then-install, want >= 1.0",
				row[cWorkers], vf)
		}
		speedups[row[cWorkers]] = sp
	}
	if speedups["4"] == 0 {
		t.Fatal("no 4-worker row committed")
	}
	if speedups["4"] < 2.0 {
		t.Errorf("4-worker streamed restart %.2fx vs 1-worker fetch-then-install, want >= 2x", speedups["4"])
	}
	if w8 := speedups["8"]; w8 != 0 && w8 > speedups["4"]*1.10 {
		t.Errorf("8 workers on 4 cores sped up %.2fx over 4 workers' %.2fx: core accounting leak",
			w8, speedups["4"])
	}
}

// TestBenchPipelineGuard pins the committed BENCH_pipeline.json
// acceptance floor:
//
//   - no speedup cell may regress below 1.0 (more workers can never be
//     slower than the serial path);
//   - the 4-worker 100%-dirty checkpoint is >= 2.5x the serial path;
//   - 100%-dirty incremental is >= 1.0x the full rewrite at every
//     worker count (the old serial path was 0.9x — slower);
//   - 8 workers on 4 cores show no real further speedup over 4 (the
//     core accounting is honest; a few percent of extra compute/IO
//     overlap is the tolerance).
func TestBenchPipelineGuard(t *testing.T) {
	tab := loadBenchTable(t, "BENCH_pipeline.json", "pipeline")
	cDirty := col(t, tab, "dirty %")
	cWorkers := col(t, tab, "workers")
	cSpeedup := col(t, tab, "speedup")
	cVsFull := col(t, tab, "vs full")

	speedups := map[string]map[string]float64{} // dirty → workers → speedup
	for _, row := range tab.Rows {
		sp := ratio(t, row[cSpeedup])
		if sp < 1.0 {
			t.Errorf("dirty %s%% workers %s: speedup %.2f < 1.0", row[cDirty], row[cWorkers], sp)
		}
		if row[cDirty] == "100" {
			if vf := ratio(t, row[cVsFull]); vf < 1.0 {
				t.Errorf("dirty 100%% workers %s: incremental %.2fx vs full rewrite, want >= 1.0",
					row[cWorkers], vf)
			}
		}
		if speedups[row[cDirty]] == nil {
			speedups[row[cDirty]] = map[string]float64{}
		}
		speedups[row[cDirty]][row[cWorkers]] = sp
	}
	d100 := speedups["100"]
	if d100 == nil || d100["4"] == 0 {
		t.Fatal("no 100 percent dirty 4-worker row committed")
	}
	if d100["4"] < 2.5 {
		t.Errorf("4-worker 100%%-dirty speedup %.2fx, want >= 2.5x", d100["4"])
	}
	if w8 := d100["8"]; w8 != 0 && w8 > d100["4"]*1.10 {
		t.Errorf("8 workers on 4 cores sped up %.2fx over 4 workers' %.2fx: core accounting leak",
			w8, d100["4"])
	}
}
